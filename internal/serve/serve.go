// Package serve turns the bench experiment registry into an always-on
// characterization service: a JSON HTTP API over a bounded job queue
// and worker pool, with singleflight-style deduplication and a
// content-addressed result cache so identical submissions under heavy
// traffic collapse into a single simulation.
//
// The lifecycle of a submission:
//
//	POST /v1/runs ── RunID(experiment, options) ──┐
//	                                              ├─ existing run? → dedup / cache hit
//	                                              └─ new run ─ bounded queue ─ worker pool
//	                                                           (full → 429, draining → 503)
//
// Run IDs are content addresses: the same (experiment ID, Options)
// pair always maps to the same run, which is what makes deduplication
// and caching a single map lookup. Experiments execute under a context
// derived from the server's base context, so Shutdown cancels in-flight
// simulations and the bench runners (which check their context between
// sweep points) return promptly.
package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand/v2"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"time"

	"piumagcn/internal/bench"
	"piumagcn/internal/obs"
	"piumagcn/internal/store"
)

// Sentinel errors; the HTTP handlers map them onto status codes.
var (
	ErrUnknownExperiment = errors.New("unknown experiment")
	ErrInvalidOptions    = errors.New("invalid options")
	ErrQueueFull         = errors.New("job queue full")
	ErrDraining          = errors.New("server draining")
	ErrUnknownRun        = errors.New("unknown run")
)

// Clock abstracts wall time so run lifecycle timestamps — which are
// journaled and surfaced in RunViews — can be pinned by tests and
// deterministic harnesses (mirrors gate.Clock and gossip.Clock).
type Clock interface {
	Now() time.Time
}

type wallClock struct{}

func (wallClock) Now() time.Time { return time.Now() }

// Config tunes the service. The zero value is usable: every field has
// a sensible default applied by New.
type Config struct {
	// Workers is the size of the simulation worker pool
	// (default: half the CPUs, at least 2).
	Workers int
	// QueueDepth bounds the number of accepted-but-not-running runs;
	// submissions beyond it are rejected with ErrQueueFull (default 16).
	QueueDepth int
	// CacheCap bounds how many completed reports are kept for cache
	// hits; the oldest completions are evicted first (default 128).
	CacheCap int
	// RunTimeout bounds a single experiment execution (0 = unbounded).
	// A run killed by this deadline reports the distinct "timeout"
	// status (with a partial report of its checkpointed sweep points),
	// not "canceled".
	RunTimeout time.Duration
	// MaxRetries is how many times a run failing with a transient error
	// (bench.IsTransient) is re-executed before reporting failure. Each
	// retry resumes from the run's checkpoint, so completed sweep points
	// are not re-simulated (default 1; negative disables retries).
	MaxRetries int
	// RetryBackoff is the base delay before the first retry; subsequent
	// retries back off exponentially with jitter (0 = retry immediately).
	RetryBackoff time.Duration
	// Experiments is the served registry (default bench.All()). Tests
	// inject synthetic experiments here.
	Experiments []bench.Experiment
	// Store, when non-nil, makes the service crash-safe: every run state
	// transition is journaled through it, completed sweep points are
	// persisted as they land, and New replays the journal — repopulating
	// the result cache and requeueing runs that were in flight when the
	// previous process died. Nil keeps the service fully in-memory,
	// byte-for-byte identical to its pre-durability behavior.
	Store *store.Store
	// CompactBytes triggers snapshot-and-truncate journal compaction
	// once the journal grows past this size (default 4 MiB; negative
	// disables size-triggered compaction — the startup compaction after
	// replay always runs).
	CompactBytes int64
	// Replica, when non-empty, names this serving replica: the HTTP
	// handler stamps it into the X-Piuma-Replica response header so a
	// fan-out front door (internal/gate) can attribute responses to
	// backends. Empty keeps responses byte-identical to a standalone
	// server.
	Replica string
	// Clock injects virtual time for run lifecycle timestamps
	// (submitted/started/finished — the values that reach the journal
	// and RunViews). Nil means wall clock.
	Clock Clock
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = max(2, runtime.GOMAXPROCS(0)/2)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.CacheCap <= 0 {
		c.CacheCap = 128
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 1
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	}
	if c.Experiments == nil {
		c.Experiments = bench.All()
	}
	if c.CompactBytes == 0 {
		c.CompactBytes = 4 << 20
	}
	if c.Clock == nil {
		c.Clock = wallClock{}
	}
	return c
}

// Status is a run's lifecycle state.
type Status string

const (
	StatusQueued  Status = "queued"
	StatusRunning Status = "running"
	StatusDone    Status = "done"
	StatusFailed  Status = "failed"
	// StatusCanceled marks a run aborted by a caller (explicit cancel,
	// abandoned waiter, shutdown).
	StatusCanceled Status = "canceled"
	// StatusTimeout marks a run killed by Config.RunTimeout. It is
	// distinct from StatusCanceled: nobody asked for the run to stop —
	// the service did, and the run carries a partial report of whatever
	// sweep points completed before the deadline.
	StatusTimeout Status = "timeout"
)

func (st Status) terminal() bool {
	return st == StatusDone || st == StatusFailed || st == StatusCanceled || st == StatusTimeout
}

// resubmittable reports whether a terminal run's record may be replaced
// by a fresh submission (only successful runs are cached).
func (st Status) resubmittable() bool {
	return st == StatusFailed || st == StatusCanceled || st == StatusTimeout
}

// RunID is the content address of a submission: the same experiment
// and options always yield the same ID, which is what collapses
// identical requests onto one run.
func RunID(experimentID string, o bench.Options) string {
	// Hash a canonical encoding of the whole struct so future Options
	// fields participate in the content address automatically.
	enc, err := json.Marshal(o)
	if err != nil {
		panic(fmt.Sprintf("serve: bench.Options not JSON-encodable: %v", err))
	}
	h := sha256.Sum256([]byte(experimentID + "|" + string(enc)))
	return "r-" + hex.EncodeToString(h[:8])
}

// run is the server-side record of one submission. All mutable fields
// are guarded by Server.mu; done is closed exactly once, on reaching a
// terminal status.
type run struct {
	id   string
	exp  bench.Experiment
	opts bench.Options

	ctx    context.Context
	cancel context.CancelFunc

	// cp is the run's checkpoint, created at submission (or restored
	// from the journal at startup) so recovered runs resume past every
	// sweep point the previous boot completed.
	cp *bench.Checkpoint

	// deadline is the absolute end of the submission's propagated
	// deadline budget (zero when none); limit is the effective execution
	// timeout the worker derived from it and Config.RunTimeout.
	deadline time.Time
	limit    time.Duration

	status Status
	report *bench.Report
	// profile aggregates the run's event-level simulations (per-
	// component utilization); nil until the experiment returns, and for
	// runs canceled before execution.
	profile   *obs.Profile
	errMsg    string
	retries   int
	submitted time.Time
	started   time.Time
	finished  time.Time
	hits      int64
	waiters   int
	// abandonable runs (created by a synchronous ?wait=true request and
	// never re-requested asynchronously) are canceled when their last
	// waiter disconnects.
	abandonable bool

	done chan struct{}
}

// RunView is an immutable snapshot of a run, safe to use after
// Server.mu is released.
type RunView struct {
	ID         string
	Experiment string
	Options    bench.Options
	Status     Status
	Report     *bench.Report
	Err        string
	// Retries counts transient-failure re-executions this run consumed.
	Retries   int
	Submitted time.Time
	Started   time.Time
	Finished  time.Time
	Hits      int64
	// CheckpointPoints is how many sweep points the run has completed so
	// far (including points recovered from the journal); ReusedPoints is
	// how many of them a resumed or retried execution skipped.
	CheckpointPoints int
	ReusedPoints     int
}

func (r *run) view() RunView {
	return RunView{
		ID:         r.id,
		Experiment: r.exp.ID,
		Options:    r.opts,
		Status:     r.status,
		Report:     r.report,
		Err:        r.errMsg,
		Retries:    r.retries,
		Submitted:  r.submitted,
		Started:    r.started,
		Finished:   r.finished,
		Hits:       r.hits,

		CheckpointPoints: r.cp.Len(),
		ReusedPoints:     r.cp.Reused(),
	}
}

// Elapsed is the run's execution time so far (zero before it starts).
func (v RunView) Elapsed() time.Duration {
	if v.Started.IsZero() {
		return 0
	}
	if v.Finished.IsZero() {
		return time.Since(v.Started)
	}
	return v.Finished.Sub(v.Started)
}

// Server owns the queue, the worker pool and the run table.
type Server struct {
	cfg   Config
	byID  map[string]bench.Experiment
	clock Clock

	baseCtx context.Context
	stop    context.CancelFunc
	queue   chan *run
	wg      sync.WaitGroup

	mu        sync.Mutex
	runs      map[string]*run
	completed []string // terminal run IDs in completion order, for eviction
	draining  bool
	// preserved counts draining-canceled runs whose terminal transition
	// was deliberately NOT journaled, so the next boot replays them as
	// in-flight and resumes them (see finishLocked).
	preserved int
	drain     DrainSummary

	recovery RecoveryStats
	metrics  *metrics
}

// New builds a Server and starts its worker pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	byID := make(map[string]bench.Experiment, len(cfg.Experiments))
	for _, e := range cfg.Experiments {
		byID[e.ID] = e
	}
	ctx, stop := context.WithCancel(context.Background())
	s := &Server{
		cfg:     cfg,
		byID:    byID,
		clock:   cfg.Clock,
		baseCtx: ctx,
		stop:    stop,
		queue:   make(chan *run, cfg.QueueDepth),
		runs:    make(map[string]*run),
		metrics: newMetrics(),
	}
	// Replay the journal before the workers start, so recovered
	// in-flight runs sit in the queue (in their journaled order) when
	// the pool spins up.
	s.restore()
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// Experiments returns the served registry in registration order.
func (s *Server) Experiments() []bench.Experiment { return s.cfg.Experiments }

// validIDs enumerates the served experiment IDs, sorted, for error
// bodies (mirrors bench.ValidIDs but respects injected registries).
func (s *Server) validIDs() []string {
	ids := make([]string, 0, len(s.byID))
	for id := range s.byID {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Submit accepts one run request. abandonable marks a synchronous
// submission whose run may be canceled when every waiter disconnects.
// The bool result reports whether an existing run absorbed the request
// (a dedup or cache hit).
func (s *Server) Submit(experimentID string, o bench.Options, abandonable bool) (RunView, bool, error) {
	return s.SubmitWithBudget(experimentID, o, abandonable, 0)
}

// SubmitWithBudget is Submit with an end-to-end deadline budget (the
// propagated X-Piuma-Deadline-Ms header, already decremented by every
// upstream hop). A positive budget caps the run's execution deadline:
// the effective limit is min(RunTimeout, budget remaining at start),
// counted from submission — time spent queued burns budget too. A run
// killed by the budget reports the distinct "timeout" status with a
// partial report, exactly like a RunTimeout kill. Zero means no budget.
func (s *Server) SubmitWithBudget(experimentID string, o bench.Options, abandonable bool, budget time.Duration) (RunView, bool, error) {
	e, ok := s.byID[experimentID]
	if !ok {
		return RunView{}, false, fmt.Errorf("%w %q (valid: %s)", ErrUnknownExperiment, experimentID, strings.Join(s.validIDs(), ", "))
	}
	if err := o.Validate(); err != nil {
		return RunView{}, false, fmt.Errorf("%w: %v", ErrInvalidOptions, err)
	}
	id := RunID(experimentID, o)

	s.mu.Lock()
	if r, ok := s.runs[id]; ok && !r.status.resubmittable() {
		// Queued/running: singleflight dedup. Done: cache hit. Failed,
		// canceled and timed-out runs are never cached — they fall
		// through and resubmit below.
		r.hits++
		r.abandonable = r.abandonable && abandonable
		if r.status == StatusDone {
			s.metrics.incCacheHit()
		} else {
			s.metrics.incDedupHit()
		}
		v := r.view()
		s.mu.Unlock()
		return v, true, nil
	}
	if s.draining {
		s.mu.Unlock()
		s.metrics.incRejected("draining")
		return RunView{}, false, ErrDraining
	}
	rctx, cancel := context.WithCancel(s.baseCtx)
	r := &run{
		id:          id,
		exp:         e,
		opts:        o,
		ctx:         rctx,
		cancel:      cancel,
		cp:          bench.NewCheckpoint(),
		status:      StatusQueued,
		submitted:   s.clock.Now(),
		abandonable: abandonable,
		done:        make(chan struct{}),
	}
	if budget > 0 {
		r.deadline = r.submitted.Add(budget)
	}
	select {
	case s.queue <- r:
		s.dropTerminalLocked(id) // a failed/canceled record is being replaced
		s.runs[id] = r
		s.metrics.incSubmitted()
		s.journalAccepted(r)
		v := r.view()
		s.mu.Unlock()
		return v, false, nil
	default:
		s.mu.Unlock()
		cancel()
		s.metrics.incRejected("queue_full")
		return RunView{}, false, ErrQueueFull
	}
}

// dropTerminalLocked removes id from the completion list when a fresh
// run is about to replace its failed/canceled record.
func (s *Server) dropTerminalLocked(id string) {
	if _, ok := s.runs[id]; !ok {
		return
	}
	for i, cid := range s.completed {
		if cid == id {
			s.completed = append(s.completed[:i], s.completed[i+1:]...)
			break
		}
	}
}

// Get returns a snapshot of one run.
func (s *Server) Get(id string) (RunView, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.runs[id]
	if !ok {
		return RunView{}, false
	}
	return r.view(), true
}

// Profile returns a run's simulation profile. The bool reports whether
// the run exists; the profile is nil until the run is done (and stays
// nil for runs that never executed an event-level simulation — those
// report an empty run list, not nil).
func (s *Server) Profile(id string) (*obs.Profile, Status, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.runs[id]
	if !ok {
		return nil, "", false
	}
	return r.profile, r.status, true
}

// Runs snapshots every known run, most recently submitted first.
func (s *Server) Runs() []RunView {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Iterate in sorted-ID order, not map order: the final sort below
	// breaks Submitted ties by ID, but building the views in a
	// deterministic order keeps every intermediate observable (and the
	// taint analyzer) honest about where map randomness can leak.
	ids := make([]string, 0, len(s.runs))
	for id := range s.runs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]RunView, 0, len(ids))
	for _, id := range ids {
		out = append(out, s.runs[id].view())
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Submitted.Equal(out[j].Submitted) {
			return out[i].Submitted.After(out[j].Submitted)
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Wait blocks until the run reaches a terminal status or ctx is done.
// If the last waiter of an abandonable run disconnects before the run
// finishes, the run itself is canceled — this is how a client
// disconnect aborts an in-flight simulation no other client wants.
func (s *Server) Wait(ctx context.Context, id string) (RunView, error) {
	s.mu.Lock()
	r, ok := s.runs[id]
	if !ok {
		s.mu.Unlock()
		return RunView{}, fmt.Errorf("%w %q", ErrUnknownRun, id)
	}
	r.waiters++
	done := r.done
	s.mu.Unlock()

	defer func() {
		s.mu.Lock()
		r.waiters--
		abandon := r.waiters == 0 && r.abandonable && !r.status.terminal()
		s.mu.Unlock()
		if abandon {
			s.Cancel(id)
		}
	}()

	// Snapshot from the retained run pointer: a re-lookup by ID could
	// miss if the record was evicted the moment it completed.
	snapshot := func() RunView {
		s.mu.Lock()
		defer s.mu.Unlock()
		return r.view()
	}
	select {
	case <-done:
		return snapshot(), nil
	case <-ctx.Done():
		return snapshot(), ctx.Err()
	}
}

// Cancel aborts a run: a queued run is marked canceled immediately, a
// running one has its context canceled and is marked canceled when the
// experiment returns. Terminal runs are left untouched.
func (s *Server) Cancel(id string) (RunView, error) {
	s.mu.Lock()
	r, ok := s.runs[id]
	if !ok {
		s.mu.Unlock()
		return RunView{}, fmt.Errorf("%w %q", ErrUnknownRun, id)
	}
	if r.status.terminal() {
		v := r.view()
		s.mu.Unlock()
		return v, nil
	}
	r.cancel()
	if r.status == StatusQueued {
		s.finishLocked(r, nil, context.Canceled, false)
	}
	v := r.view()
	s.mu.Unlock()
	return v, nil
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// QueueDepth is the number of accepted-but-not-running runs.
func (s *Server) QueueDepth() int { return len(s.queue) }

// Shutdown drains the service: new submissions are refused with
// ErrDraining, in-flight experiment contexts are canceled (the bench
// runners notice between sweep points), workers exit, and any runs
// still queued are marked canceled. With a Store configured, the
// drained runs' terminal transitions are NOT journaled — they replay
// as in-flight on the next boot and resume from their checkpoints —
// and the journal is flushed to disk before Shutdown returns (see
// DrainSummary for the one-line accounting). It returns ctx.Err() if
// the pool does not drain in time.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.stop()

	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		err = ctx.Err()
	}

	// Whatever is still sitting in the queue will never run.
	queued := 0
	for {
		select {
		case r := <-s.queue:
			queued++
			s.mu.Lock()
			if !r.status.terminal() {
				s.finishLocked(r, nil, context.Canceled, false)
			}
			s.mu.Unlock()
			continue
		default:
		}
		break
	}

	sum := DrainSummary{QueuedDrained: queued}
	if st := s.cfg.Store; st != nil {
		if serr := st.Sync(); serr != nil && err == nil {
			err = serr
		}
		sum.JournaledRecords = st.AppendedRecords()
		sum.JournalBytes = st.SizeBytes()
	}
	s.mu.Lock()
	sum.PreservedRuns = s.preserved
	s.drain = sum
	s.mu.Unlock()
	return err
}

// DrainSummary accounts for what Shutdown did, for the operator's
// one-line drain log.
type DrainSummary struct {
	// QueuedDrained is how many accepted-but-never-started runs the
	// shutdown pulled off the queue.
	QueuedDrained int
	// PreservedRuns is how many non-terminal runs were left in-flight in
	// the journal (no terminal record), to be resumed by the next boot.
	PreservedRuns int
	// JournaledRecords is how many lifecycle records this process
	// appended over its lifetime; JournalBytes is the journal's final
	// synced size. Both are zero without a Store.
	JournaledRecords int64
	JournalBytes     int64
}

// DrainSummary returns the accounting of a completed Shutdown (the
// zero value before Shutdown has run).
func (s *Server) DrainSummary() DrainSummary {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.drain
}

// worker executes queued runs until the base context is canceled.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case r := <-s.queue:
			s.execute(r)
		}
	}
}

// PanicError is the terminal error of a run whose experiment panicked:
// the recovered value plus the goroutine stack at the panic site. The
// worker survives — a panicking experiment produces a failed run, not a
// crashed service.
type PanicError struct {
	Value any
	Stack string
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("experiment panicked: %v\n%s", e.Value, e.Stack)
}

func (s *Server) execute(r *run) {
	s.mu.Lock()
	if r.status != StatusQueued { // canceled while queued
		s.mu.Unlock()
		return
	}
	r.status = StatusRunning
	r.started = s.clock.Now()
	// The execution limit is RunTimeout capped by whatever remains of
	// the propagated deadline budget — which may already be negative if
	// the run sat queued past its deadline, in which case the timeout
	// context below is born expired and the run reports "timeout" with
	// an empty partial report without burning any simulation time.
	limit := s.cfg.RunTimeout
	if !r.deadline.IsZero() {
		if rem := r.deadline.Sub(r.started); limit <= 0 || rem < limit {
			limit = rem
		}
	}
	r.limit = limit
	s.journal(store.Started(r.id))
	s.mu.Unlock()
	s.metrics.incStarted()

	ctx := r.ctx
	var timeoutCtx context.Context
	if limit > 0 || !r.deadline.IsZero() {
		var cancel context.CancelFunc
		timeoutCtx, cancel = context.WithTimeout(ctx, limit)
		ctx = timeoutCtx
		defer cancel()
	}
	if spec, err := r.opts.FaultSpec(); err == nil && spec != nil {
		s.metrics.setFaultSeverity(r.exp.ID, spec.Severity())
	}
	// Aggregation-only profiler: per-component utilization without span
	// retention, so long-running services never accumulate trace memory.
	// The experiment runs single-threadedly against it; the run.done
	// close in finishLocked publishes the finished profile to readers.
	// The checkpoint is shared across attempts: a retried experiment
	// resumes past every sweep point an earlier attempt completed, and
	// an interrupted run's checkpointed points back its partial report.
	// Recovered runs arrive here with the previous boot's points already
	// restored. The observer journals each fresh point the moment it
	// completes, so a crash loses at most the point in flight.
	prof := obs.NewProfiler(obs.ProfilerOptions{MaxSpans: -1})
	cp := r.cp
	cp.SetObserver(func(p bench.Point) { s.journalPoint(r.id, p) })
	runCtx := bench.WithCheckpoint(obs.NewContext(ctx, prof), cp)

	// attempt runs the experiment once, converting a panic into a
	// *PanicError so one bad experiment cannot erode the worker pool.
	attempt := func() (rep *bench.Report, err error) {
		defer func() {
			if v := recover(); v != nil {
				s.metrics.incPanicked()
				err = &PanicError{Value: v, Stack: string(debug.Stack())}
			}
		}()
		return r.exp.Run(runCtx, r.opts)
	}

	rep, err := attempt()
	for try := 1; err != nil && bench.IsTransient(err) && try <= s.cfg.MaxRetries && ctx.Err() == nil; try++ {
		s.mu.Lock()
		r.retries++
		s.mu.Unlock()
		s.metrics.incRetried()
		if !s.backoff(ctx, try) {
			break
		}
		rep, err = attempt()
	}
	if err == nil && rep == nil {
		err = fmt.Errorf("experiment %s returned no report", r.exp.ID)
	}
	// A run killed mid-sweep still surfaces the points it completed.
	if err != nil && rep == nil {
		rep = cp.PartialReport(r.exp)
	}
	// Timeout vs cancel: context errors are sticky and first-cause
	// wins, so DeadlineExceeded on the derived context proves the
	// deadline fired before any user cancel or shutdown — even if the
	// waiter abandoned the run between the deadline expiring and the
	// kill landing at the next sweep-point check. A cancel that beat
	// the deadline leaves Canceled here instead.
	timedOut := timeoutCtx != nil &&
		errors.Is(timeoutCtx.Err(), context.DeadlineExceeded)

	s.mu.Lock()
	r.profile = prof.Profile()
	s.finishLocked(r, rep, err, timedOut)
	s.mu.Unlock()
	s.maybeCompact()
}

// backoff sleeps before retry number `try` (exponential from
// Config.RetryBackoff, with jitter), honoring ctx. It reports whether
// the retry should proceed.
func (s *Server) backoff(ctx context.Context, try int) bool {
	d := s.cfg.RetryBackoff
	if d <= 0 {
		return ctx.Err() == nil
	}
	if try > 1 && try < 63 {
		d <<= try - 1
	}
	// Full jitter on the upper half keeps retry herds from aligning.
	d = d/2 + rand.N(d/2+1)
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// finishLocked moves a run to its terminal status, closes done, frees
// its context, records metrics and applies cache eviction. timedOut
// distinguishes a RunTimeout kill from a caller cancel — both surface
// as context errors from the experiment, but they are different facts
// and report different statuses. Interrupted and failed runs keep any
// partial report their checkpoint produced. Callers hold s.mu.
func (s *Server) finishLocked(r *run, rep *bench.Report, err error, timedOut bool) {
	r.finished = s.clock.Now()
	switch {
	case err == nil:
		r.status = StatusDone
		r.report = rep
		s.metrics.observeCompleted(r.exp.ID, r.finished.Sub(r.started))
		s.metrics.recordProfile(r.exp.ID, r.profile)
	case timedOut:
		r.status = StatusTimeout
		r.report = rep
		lim := r.limit
		if lim <= 0 {
			lim = s.cfg.RunTimeout
		}
		r.errMsg = fmt.Sprintf("run exceeded the %v timeout: %v", lim, err)
		s.metrics.incTimedOut()
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		r.status = StatusCanceled
		r.report = rep
		r.errMsg = err.Error()
		s.metrics.incCanceled()
	default:
		r.status = StatusFailed
		r.report = rep
		r.errMsg = err.Error()
		s.metrics.incFailed()
	}
	// Journal the terminal transition — except for draining-triggered
	// cancellations, which are deliberately left non-terminal in the
	// journal so the next boot replays them as in-flight and resumes
	// them from their checkpointed points (the graceful-shutdown twin of
	// kill -9 recovery).
	switch {
	case r.status == StatusDone:
		if raw, jerr := json.Marshal(rep); jerr == nil {
			s.journal(store.Completed(r.id, raw))
		} else {
			// An unencodable report cannot reach the journal; count the
			// durability gap like any other failed append.
			s.metrics.incJournalAppendError()
		}
	case r.status == StatusCanceled && s.draining:
		s.preserved++
	default:
		s.journal(store.Failed(r.id, string(r.status), r.errMsg))
	}
	close(r.done)
	r.cancel()
	s.completed = append(s.completed, r.id)
	s.evictLocked()
}

// evictLocked applies the cache-capacity bound to the completion list.
func (s *Server) evictLocked() {
	for len(s.completed) > s.cfg.CacheCap {
		evict := s.completed[0]
		s.completed = s.completed[1:]
		if old, ok := s.runs[evict]; ok && old.status.terminal() {
			delete(s.runs, evict)
			s.metrics.incEvicted()
		}
	}
}
