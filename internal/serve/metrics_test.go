package serve

import (
	"strings"
	"testing"
	"time"

	"piumagcn/internal/obs"
	"piumagcn/internal/sim"
)

// TestMetricsExpositionByteCompatible pins the /metrics output against
// what the pre-registry, hand-rolled implementation rendered: the
// original families must appear byte for byte, in the original order,
// with the new simulation families appended strictly after them.
// Durations are chosen binary-exact (0.25s, 0.5s, 2s) so the histogram
// sums format identically under %g and strconv.
func TestMetricsExpositionByteCompatible(t *testing.T) {
	m := newMetrics()
	m.incSubmitted()
	m.incSubmitted()
	m.incSubmitted()
	m.incStarted()
	m.incStarted()
	m.observeCompleted("fig5", 2*time.Second)
	m.observeCompleted("fig2", 250*time.Millisecond)
	m.observeCompleted("fig2", 500*time.Millisecond)
	m.incFailed()
	m.incCanceled()
	m.incCacheHit()
	m.incCacheHit()
	m.incDedupHit()
	m.incEvicted()
	m.incRejected("queue_full")
	m.incRejected("queue_full")
	m.incRejected("draining")
	m.incTimedOut() // bumps the legacy canceled counter too
	m.incRetried()
	m.incRetried()
	m.incPanicked()
	m.setFaultSeverity("ext-degraded", 0.5)
	m.addRecovered(3)
	m.addQuarantined(2)
	m.incJournalAppendError()
	m.observeClass("gold", 0.25)
	m.observeClass("gold", 2)
	m.observeClass("not-a-class", 0.5) // hostile header → bounded "other"

	var b strings.Builder
	m.render(&b, 4, true, 4096)
	got := b.String()

	legacy := `# HELP piumaserve_runs_submitted_total Runs accepted into the queue.
# TYPE piumaserve_runs_submitted_total counter
piumaserve_runs_submitted_total 3
# HELP piumaserve_runs_started_total Runs picked up by a worker.
# TYPE piumaserve_runs_started_total counter
piumaserve_runs_started_total 2
# HELP piumaserve_runs_completed_total Runs finished successfully.
# TYPE piumaserve_runs_completed_total counter
piumaserve_runs_completed_total 3
# HELP piumaserve_runs_failed_total Runs that returned an error.
# TYPE piumaserve_runs_failed_total counter
piumaserve_runs_failed_total 1
# HELP piumaserve_runs_canceled_total Runs canceled or timed out.
# TYPE piumaserve_runs_canceled_total counter
piumaserve_runs_canceled_total 2
# HELP piumaserve_cache_hits_total Submissions answered from the result cache.
# TYPE piumaserve_cache_hits_total counter
piumaserve_cache_hits_total 2
# HELP piumaserve_dedup_hits_total Submissions collapsed onto an in-flight run.
# TYPE piumaserve_dedup_hits_total counter
piumaserve_dedup_hits_total 1
# HELP piumaserve_cache_evictions_total Cached results evicted by capacity.
# TYPE piumaserve_cache_evictions_total counter
piumaserve_cache_evictions_total 1
# HELP piumaserve_runs_rejected_total Submissions refused, by reason.
# TYPE piumaserve_runs_rejected_total counter
piumaserve_runs_rejected_total{reason="draining"} 1
piumaserve_runs_rejected_total{reason="queue_full"} 2
# HELP piumaserve_queue_depth Accepted runs waiting for a worker.
# TYPE piumaserve_queue_depth gauge
piumaserve_queue_depth 4
# HELP piumaserve_draining Whether shutdown has begun.
# TYPE piumaserve_draining gauge
piumaserve_draining 1
# HELP piumaserve_run_duration_seconds Successful run duration by experiment.
# TYPE piumaserve_run_duration_seconds histogram
piumaserve_run_duration_seconds_bucket{experiment="fig2",le="0.001"} 0
piumaserve_run_duration_seconds_bucket{experiment="fig2",le="0.005"} 0
piumaserve_run_duration_seconds_bucket{experiment="fig2",le="0.025"} 0
piumaserve_run_duration_seconds_bucket{experiment="fig2",le="0.1"} 0
piumaserve_run_duration_seconds_bucket{experiment="fig2",le="0.5"} 2
piumaserve_run_duration_seconds_bucket{experiment="fig2",le="1"} 2
piumaserve_run_duration_seconds_bucket{experiment="fig2",le="5"} 2
piumaserve_run_duration_seconds_bucket{experiment="fig2",le="25"} 2
piumaserve_run_duration_seconds_bucket{experiment="fig2",le="100"} 2
piumaserve_run_duration_seconds_bucket{experiment="fig2",le="500"} 2
piumaserve_run_duration_seconds_bucket{experiment="fig2",le="+Inf"} 2
piumaserve_run_duration_seconds_sum{experiment="fig2"} 0.75
piumaserve_run_duration_seconds_count{experiment="fig2"} 2
piumaserve_run_duration_seconds_bucket{experiment="fig5",le="0.001"} 0
piumaserve_run_duration_seconds_bucket{experiment="fig5",le="0.005"} 0
piumaserve_run_duration_seconds_bucket{experiment="fig5",le="0.025"} 0
piumaserve_run_duration_seconds_bucket{experiment="fig5",le="0.1"} 0
piumaserve_run_duration_seconds_bucket{experiment="fig5",le="0.5"} 0
piumaserve_run_duration_seconds_bucket{experiment="fig5",le="1"} 0
piumaserve_run_duration_seconds_bucket{experiment="fig5",le="5"} 1
piumaserve_run_duration_seconds_bucket{experiment="fig5",le="25"} 1
piumaserve_run_duration_seconds_bucket{experiment="fig5",le="100"} 1
piumaserve_run_duration_seconds_bucket{experiment="fig5",le="500"} 1
piumaserve_run_duration_seconds_bucket{experiment="fig5",le="+Inf"} 1
piumaserve_run_duration_seconds_sum{experiment="fig5"} 2
piumaserve_run_duration_seconds_count{experiment="fig5"} 1
`
	simFamilies := `# HELP piumaserve_sim_events_total Simulation events processed, by experiment.
# TYPE piumaserve_sim_events_total counter
# HELP piumaserve_sim_busy_seconds_total Simulated component busy time, by component class.
# TYPE piumaserve_sim_busy_seconds_total counter
`
	resilienceFamilies := `# HELP piumaserve_runs_timed_out_total Runs killed by the run timeout.
# TYPE piumaserve_runs_timed_out_total counter
piumaserve_runs_timed_out_total 1
# HELP piumaserve_run_retries_total Transient-failure retries executed.
# TYPE piumaserve_run_retries_total counter
piumaserve_run_retries_total 2
# HELP piumaserve_run_panics_total Experiment panics recovered by the worker pool.
# TYPE piumaserve_run_panics_total counter
piumaserve_run_panics_total 1
# HELP piumaserve_fault_severity Severity of the most recent fault-injected run, by experiment.
# TYPE piumaserve_fault_severity gauge
piumaserve_fault_severity{experiment="ext-degraded"} 0.5
`
	durabilityFamilies := `# HELP piumaserve_recovered_runs_total Runs restored from the journal at startup.
# TYPE piumaserve_recovered_runs_total counter
piumaserve_recovered_runs_total 3
# HELP piumaserve_journal_bytes Current size of the run journal.
# TYPE piumaserve_journal_bytes gauge
piumaserve_journal_bytes 4096
# HELP piumaserve_quarantined_records_total Malformed journal records skipped at startup, plus one per quarantined corrupt tail.
# TYPE piumaserve_quarantined_records_total counter
piumaserve_quarantined_records_total 2
# HELP piumaserve_journal_append_errors_total Lifecycle records that failed to reach the journal.
# TYPE piumaserve_journal_append_errors_total counter
piumaserve_journal_append_errors_total 1
`
	classFamilies := `# HELP piumaserve_class_requests_total Run submissions by SLO class (X-SLO-Class header; bounded vocabulary).
# TYPE piumaserve_class_requests_total counter
piumaserve_class_requests_total{class="gold"} 2
piumaserve_class_requests_total{class="other"} 1
# HELP piumaserve_class_request_seconds Submit-request service time by SLO class.
# TYPE piumaserve_class_request_seconds histogram
piumaserve_class_request_seconds_bucket{class="gold",le="0.001"} 0
piumaserve_class_request_seconds_bucket{class="gold",le="0.005"} 0
piumaserve_class_request_seconds_bucket{class="gold",le="0.025"} 0
piumaserve_class_request_seconds_bucket{class="gold",le="0.1"} 0
piumaserve_class_request_seconds_bucket{class="gold",le="0.5"} 1
piumaserve_class_request_seconds_bucket{class="gold",le="1"} 1
piumaserve_class_request_seconds_bucket{class="gold",le="5"} 2
piumaserve_class_request_seconds_bucket{class="gold",le="25"} 2
piumaserve_class_request_seconds_bucket{class="gold",le="100"} 2
piumaserve_class_request_seconds_bucket{class="gold",le="500"} 2
piumaserve_class_request_seconds_bucket{class="gold",le="+Inf"} 2
piumaserve_class_request_seconds_sum{class="gold"} 2.25
piumaserve_class_request_seconds_count{class="gold"} 2
piumaserve_class_request_seconds_bucket{class="other",le="0.001"} 0
piumaserve_class_request_seconds_bucket{class="other",le="0.005"} 0
piumaserve_class_request_seconds_bucket{class="other",le="0.025"} 0
piumaserve_class_request_seconds_bucket{class="other",le="0.1"} 0
piumaserve_class_request_seconds_bucket{class="other",le="0.5"} 1
piumaserve_class_request_seconds_bucket{class="other",le="1"} 1
piumaserve_class_request_seconds_bucket{class="other",le="5"} 1
piumaserve_class_request_seconds_bucket{class="other",le="25"} 1
piumaserve_class_request_seconds_bucket{class="other",le="100"} 1
piumaserve_class_request_seconds_bucket{class="other",le="500"} 1
piumaserve_class_request_seconds_bucket{class="other",le="+Inf"} 1
piumaserve_class_request_seconds_sum{class="other"} 0.5
piumaserve_class_request_seconds_count{class="other"} 1
`
	if want := legacy + simFamilies + resilienceFamilies + durabilityFamilies + classFamilies; got != want {
		t.Fatalf("exposition drifted from the legacy format.\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestRecordProfileAggregatesSimMetrics checks the sim families pick up
// per-run event counts and per-class busy seconds.
func TestRecordProfileAggregatesSimMetrics(t *testing.T) {
	m := newMetrics()
	p := obs.NewProfiler(obs.ProfilerOptions{MaxSpans: -1})
	rt := p.StartRun("fig5 dma c=4 K=8")
	rt.Reserve("slice0", 0, 250*sim.Nanosecond)
	rt.Reserve("mtp0", 0, 50*sim.Nanosecond)
	rt.Event(10)
	rt.Event(20)
	m.recordProfile("fig5", p.Profile())
	m.recordProfile("fig5", nil) // nil profile must be a no-op

	var b strings.Builder
	m.render(&b, 0, false, 0)
	out := b.String()
	for _, want := range []string{
		`piumaserve_sim_events_total{experiment="fig5"} 2`,
		`piumaserve_sim_busy_seconds_total{class="core"} 5e-08`,
		`piumaserve_sim_busy_seconds_total{class="dram-slice"} 2.5e-07`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Fatalf("missing %q in exposition:\n%s", want, out)
		}
	}
}
