package serve_test

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"

	"piumagcn/internal/bench"
	"piumagcn/internal/obs"
	"piumagcn/internal/serve"
	"piumagcn/internal/sim"
)

// simulatingExperiment registers one synthetic simulated run with the
// profiler the server puts in the experiment context, mirroring what
// the bench kernel helpers do.
func simulatingExperiment(id string) bench.Experiment {
	return bench.Experiment{
		ID:    id,
		Title: "test simulator",
		Run: func(ctx context.Context, o bench.Options) (*bench.Report, error) {
			if p := obs.FromContext(ctx); p != nil {
				rt := p.StartRun(id + " c=1")
				rt.Reserve("slice0", 0, 100*sim.Nanosecond)
				rt.Reserve("dma0", 0, 40*sim.Nanosecond)
				rt.Event(5 * sim.Nanosecond)
			}
			r := &bench.Report{ID: id, Title: "test simulator"}
			r.Add("section", "body")
			return r, nil
		},
	}
}

func TestProfileEndpoint(t *testing.T) {
	s := newTestServer(t, serve.Config{
		Workers:     1,
		Experiments: []bench.Experiment{simulatingExperiment("sim-exp")},
	})
	h := s.Handler()

	w := doJSON(t, h, "POST", "/v1/runs?wait=true", `{"experiment":"sim-exp"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("submit status = %d: %s", w.Code, w.Body.String())
	}
	id := decodeRun(t, w).ID

	w = doJSON(t, h, "GET", "/v1/runs/"+id+"/profile", "")
	if w.Code != http.StatusOK {
		t.Fatalf("profile status = %d: %s", w.Code, w.Body.String())
	}
	var p obs.Profile
	if err := json.Unmarshal(w.Body.Bytes(), &p); err != nil {
		t.Fatalf("decoding profile: %v\n%s", err, w.Body.String())
	}
	if len(p.Runs) != 1 || p.Runs[0].Label != "sim-exp c=1" {
		t.Fatalf("profile runs = %+v", p.Runs)
	}
	slice, ok := p.Runs[0].Class("dram-slice")
	if !ok || slice.Busy != 100*sim.Nanosecond {
		t.Fatalf("dram-slice stats = %+v (ok=%v)", slice, ok)
	}

	// The run's sim activity must surface in /metrics too.
	w = doJSON(t, h, "GET", "/metrics", "")
	body := w.Body.String()
	for _, want := range []string{
		`piumaserve_sim_events_total{experiment="sim-exp"} 1`,
		`piumaserve_sim_busy_seconds_total{class="dma"}`,
		`piumaserve_sim_busy_seconds_total{class="dram-slice"}`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("missing %q in /metrics:\n%s", want, body)
		}
	}
}

func TestProfileEndpointUnknownRunIs404(t *testing.T) {
	s := newTestServer(t, serve.Config{})
	w := doJSON(t, s.Handler(), "GET", "/v1/runs/r-nope/profile", "")
	if w.Code != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", w.Code)
	}
}

func TestProfileEndpointNotDoneIs409(t *testing.T) {
	release := make(chan struct{})
	var started atomic.Int64
	s := newTestServer(t, serve.Config{
		Workers:     1,
		Experiments: []bench.Experiment{blockingExperiment("blocker", &started, release)},
	})
	h := s.Handler()

	w := doJSON(t, h, "POST", "/v1/runs", `{"experiment":"blocker"}`)
	if w.Code != http.StatusAccepted {
		t.Fatalf("submit status = %d", w.Code)
	}
	id := decodeRun(t, w).ID
	waitStatus(t, s, id, serve.StatusRunning)

	w = doJSON(t, h, "GET", "/v1/runs/"+id+"/profile", "")
	if w.Code != http.StatusConflict {
		t.Fatalf("in-flight profile status = %d, want 409: %s", w.Code, w.Body.String())
	}

	close(release)
	waitStatus(t, s, id, serve.StatusDone)
	w = doJSON(t, h, "GET", "/v1/runs/"+id+"/profile", "")
	if w.Code != http.StatusOK {
		t.Fatalf("done profile status = %d: %s", w.Code, w.Body.String())
	}
}

// Analytical experiments never touch the simulator; their profile is an
// empty (but present, non-null) run list.
func TestProfileEndpointAnalyticalRunIsEmpty(t *testing.T) {
	s := newTestServer(t, serve.Config{Workers: 1})
	h := s.Handler()
	w := doJSON(t, h, "POST", "/v1/runs?wait=true", `{"experiment":"fig2","options":{"max_sim_edges":1024,"quick":true,"seed":7}}`)
	if w.Code != http.StatusOK {
		t.Fatalf("submit status = %d: %s", w.Code, w.Body.String())
	}
	id := decodeRun(t, w).ID
	w = doJSON(t, h, "GET", "/v1/runs/"+id+"/profile", "")
	if w.Code != http.StatusOK {
		t.Fatalf("profile status = %d: %s", w.Code, w.Body.String())
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(w.Body.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	if string(raw["runs"]) != "[]" {
		t.Fatalf(`runs = %s, want []`, raw["runs"])
	}
}
