package serve_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"piumagcn/internal/bench"
	"piumagcn/internal/serve"
)

// fuzzServer is shared across fuzz iterations: building a worker pool
// per input would dominate the fuzzing loop. The served experiment
// completes instantly, so accepted submissions drain on their own, and
// the tiny cache keeps the run table bounded no matter how many
// distinct option sets the fuzzer invents.
var (
	fuzzOnce sync.Once
	fuzzSrv  *serve.Server
)

func fuzzHandler() http.Handler {
	fuzzOnce.Do(func() {
		fuzzSrv = serve.New(serve.Config{
			Workers:    2,
			QueueDepth: 64,
			CacheCap:   8,
			Experiments: []bench.Experiment{{
				ID:    "instant",
				Title: "instant experiment",
				Run: func(ctx context.Context, o bench.Options) (*bench.Report, error) {
					r := &bench.Report{ID: "instant", Title: "instant"}
					r.Add("s", "b")
					return r, nil
				},
			}},
		})
	})
	return fuzzSrv.Handler()
}

// FuzzSubmitDecoding hammers POST /v1/runs with arbitrary bodies: the
// handler must never panic, must answer every request with one of the
// API's documented status codes, and must always produce a valid JSON
// body.
func FuzzSubmitDecoding(f *testing.F) {
	for _, seed := range []string{
		`{"experiment":"instant"}`,
		`{"experiment":"instant","options":{"max_sim_edges":16384,"quick":true,"seed":7}}`,
		`{"experiment":"instant","options":null}`,
		`{"experiment":"instant","options":{"faults":"dead-cores=2,net-delay=3,loss=0.05"}}`,
		`{"experiment":"instant","options":{"faults":"bogus"}}`,
		`{"experiment":"instant","options":{"max_sim_edges":-5}}`,
		`{"experiment":"nope"}`,
		`{"experiment":""}`,
		`{}`,
		`null`,
		`{"experiment":"instant","options":{"seed":9223372036854775807}}`,
		`{"experiment":"instant","options":{"quick":"yes"}}`,
		`{"experiment":"instant","options":[]}`,
		`[]`,
		`{"experiment":{"nested":true}}`,
		"\x00\x01\x02",
		`{"experiment":"instant","options":{"max_sim_edges":1e309}}`,
	} {
		f.Add([]byte(seed))
	}
	allowed := map[int]bool{
		http.StatusOK:                 true,
		http.StatusAccepted:           true,
		http.StatusBadRequest:         true,
		http.StatusNotFound:           true,
		http.StatusTooManyRequests:    true,
		http.StatusServiceUnavailable: true,
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		h := fuzzHandler()
		req := httptest.NewRequest("POST", "/v1/runs", strings.NewReader(string(body)))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if !allowed[w.Code] {
			t.Fatalf("POST /v1/runs (%q) answered %d, outside the documented codes", body, w.Code)
		}
		if !json.Valid(w.Body.Bytes()) {
			t.Fatalf("response to %q is not valid JSON: %q", body, w.Body.String())
		}
	})
}
