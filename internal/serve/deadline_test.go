package serve_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"piumagcn/internal/bench"
	"piumagcn/internal/serve"
)

// TestDeadlineBudgetTimesOutRun: a submission carrying an
// X-Piuma-Deadline-Ms budget must be bounded by it even with no
// RunTimeout configured — the run is killed when the budget expires and
// reports the distinct "timeout" status with a partial report of the
// checkpointed points, exactly like a RunTimeout kill.
func TestDeadlineBudgetTimesOutRun(t *testing.T) {
	block := make(chan struct{}) // never closed: the sweep stalls after point 0
	s := newTestServer(t, serve.Config{
		Workers:     1,
		Experiments: []bench.Experiment{sweepExperiment("sweep", 4, block, nil, 0)},
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	body := `{"experiment":"sweep","options":{"quick":true,"max_sim_edges":1024}}`
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/runs?wait=true", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(serve.DeadlineHeader, "200")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var res serve.RunResource
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if res.Status != serve.StatusTimeout {
		t.Fatalf("status = %q, want %q (budget-killed run must report the distinct timeout status)", res.Status, serve.StatusTimeout)
	}
	if res.Report == nil {
		t.Fatal("budget-killed run has no partial report")
	}
	if res.CheckpointPoints < 1 {
		t.Fatalf("checkpoint points = %d, want the pre-stall point preserved", res.CheckpointPoints)
	}
}

// TestDeadlineBudgetBeatsWaiterAbandon: when the waiting client gives
// up (waitBudgeted's grace elapses) between the budget deadline firing
// and the kill landing at the experiment's next cancellation check,
// the run must still report "timeout", not "canceled" — context errors
// are sticky, so the deadline having fired first is knowable even
// though the abandon also canceled the run's context.
func TestDeadlineBudgetBeatsWaiterAbandon(t *testing.T) {
	slow := bench.Experiment{
		ID:    "slowcancel",
		Title: "ignores cancellation for a while",
		Run: func(ctx context.Context, o bench.Options) (*bench.Report, error) {
			// Deliberately deaf to ctx past the 50ms waiter grace: the
			// budget expires, the waiter abandons, THEN the kill lands.
			time.Sleep(400 * time.Millisecond)
			return nil, ctx.Err()
		},
	}
	s := newTestServer(t, serve.Config{Workers: 1, Experiments: []bench.Experiment{slow}})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	body := `{"experiment":"slowcancel","options":{"quick":true,"max_sim_edges":1024}}`
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/runs?wait=true", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(serve.DeadlineHeader, "100")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var snap serve.RunResource
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// The snapshot answered mid-kill; poll until the run is terminal.
	client := serve.NewClient(ts.URL, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	deadline := time.After(5 * time.Second)
	for {
		res, status, err := client.Run(ctx, snap.ID, false)
		if err != nil || status != http.StatusOK {
			t.Fatalf("poll: status %d err %v", status, err)
		}
		if res.Status == serve.StatusTimeout {
			break
		}
		if res.Status != serve.StatusQueued && res.Status != serve.StatusRunning {
			t.Fatalf("status = %q, want %q (budget fired before the abandon)", res.Status, serve.StatusTimeout)
		}
		select {
		case <-deadline:
			t.Fatalf("run never terminal; last status %q", res.Status)
		case <-time.After(20 * time.Millisecond):
		}
	}
}

// TestDeadlineBudgetIgnoredWhenAbsent: without the header a run with no
// RunTimeout is unbounded (regression guard for the budget plumbing).
func TestDeadlineBudgetIgnoredWhenAbsent(t *testing.T) {
	s := newTestServer(t, serve.Config{
		Workers:     1,
		Experiments: []bench.Experiment{sweepExperiment("sweep", 2, nil, nil, 0)},
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	client := serve.NewClient(ts.URL, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	res, status, err := client.SubmitAndWait(ctx, "sweep", bench.QuickOptions(), "")
	if err != nil || status != http.StatusOK || res.Status != serve.StatusDone {
		t.Fatalf("status %d run %q err %v", status, res.Status, err)
	}
}

// TestSubmitAndWaitRidesThroughRestart: when the POST dies on the wire
// (replica restarting), SubmitAndWait polls the content-addressed run
// ID instead of blindly re-submitting; the poll itself retries through
// transient transport errors. The run lands exactly once.
func TestSubmitAndWaitRidesThroughRestart(t *testing.T) {
	o := bench.QuickOptions()
	o.Seed = 42
	id := serve.RunID("table1", o)

	var posts, gets atomic.Int64
	kill := func(w http.ResponseWriter) {
		hj, ok := w.(http.Hijacker)
		if !ok {
			t.Fatal("recorder does not support hijack")
		}
		conn, _, err := hj.Hijack()
		if err != nil {
			t.Fatal(err)
		}
		conn.Close()
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/runs", func(w http.ResponseWriter, r *http.Request) {
		posts.Add(1)
		kill(w) // the submission dies mid-flight, outcome unknown
	})
	mux.HandleFunc("GET /v1/runs/{id}", func(w http.ResponseWriter, r *http.Request) {
		if gets.Add(1) == 1 {
			kill(w) // first poll hits the restart window
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"id":"` + id + `","experiment":"table1","status":"done"}`))
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)

	client := serve.NewClient(ts.URL, nil)
	client.SetRetries(3, time.Millisecond, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	res, status, _, err := client.SubmitAndWaitInfo(ctx, "table1", o, "gold")
	if err != nil || status != http.StatusOK {
		t.Fatalf("status %d err %v", status, err)
	}
	if res.ID != id || res.Status != serve.StatusDone {
		t.Fatalf("res = %+v, want run %s done", res, id)
	}
	if posts.Load() != 1 {
		t.Fatalf("POST issued %d times; the poll must resolve the dead submission without re-POSTing", posts.Load())
	}
	if gets.Load() != 2 {
		t.Fatalf("GET issued %d times, want 2 (one transient failure, one retry)", gets.Load())
	}
}
