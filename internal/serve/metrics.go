package serve

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// metrics is a dependency-free Prometheus-style counter set: run
// lifecycle counters, cache/dedup/rejection counters and a fixed-bucket
// run-duration histogram per experiment. Rendered as text exposition
// format by render (the /metrics endpoint).
type metrics struct {
	mu        sync.Mutex
	submitted uint64
	started   uint64
	completed uint64
	failed    uint64
	canceled  uint64
	cacheHits uint64
	dedupHits uint64
	evicted   uint64
	rejected  map[string]uint64 // by reason: queue_full, draining
	durations map[string]*histogram
}

func newMetrics() *metrics {
	return &metrics{
		rejected:  make(map[string]uint64),
		durations: make(map[string]*histogram),
	}
}

// latencyBounds are the histogram bucket upper bounds in seconds.
// Quick-option runs land in the millisecond buckets; full-fidelity
// simulator sweeps reach into the minutes.
var latencyBounds = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 1, 5, 25, 100, 500}

type histogram struct {
	counts []uint64 // len(latencyBounds)+1; last is +Inf
	sum    float64
	n      uint64
}

func (h *histogram) observe(seconds float64) {
	i := sort.SearchFloat64s(latencyBounds, seconds)
	h.counts[i]++
	h.sum += seconds
	h.n++
}

func (m *metrics) incSubmitted() { m.mu.Lock(); m.submitted++; m.mu.Unlock() }
func (m *metrics) incStarted()   { m.mu.Lock(); m.started++; m.mu.Unlock() }
func (m *metrics) incFailed()    { m.mu.Lock(); m.failed++; m.mu.Unlock() }
func (m *metrics) incCanceled()  { m.mu.Lock(); m.canceled++; m.mu.Unlock() }
func (m *metrics) incCacheHit()  { m.mu.Lock(); m.cacheHits++; m.mu.Unlock() }
func (m *metrics) incDedupHit()  { m.mu.Lock(); m.dedupHits++; m.mu.Unlock() }
func (m *metrics) incEvicted()   { m.mu.Lock(); m.evicted++; m.mu.Unlock() }

func (m *metrics) incRejected(reason string) {
	m.mu.Lock()
	m.rejected[reason]++
	m.mu.Unlock()
}

func (m *metrics) observeCompleted(experimentID string, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.completed++
	h, ok := m.durations[experimentID]
	if !ok {
		h = &histogram{counts: make([]uint64, len(latencyBounds)+1)}
		m.durations[experimentID] = h
	}
	h.observe(d.Seconds())
}

// render writes the Prometheus text exposition of every metric plus
// the live gauges supplied by the server.
func (m *metrics) render(w io.Writer, queueDepth int, draining bool) {
	m.mu.Lock()
	defer m.mu.Unlock()

	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("piumaserve_runs_submitted_total", "Runs accepted into the queue.", m.submitted)
	counter("piumaserve_runs_started_total", "Runs picked up by a worker.", m.started)
	counter("piumaserve_runs_completed_total", "Runs finished successfully.", m.completed)
	counter("piumaserve_runs_failed_total", "Runs that returned an error.", m.failed)
	counter("piumaserve_runs_canceled_total", "Runs canceled or timed out.", m.canceled)
	counter("piumaserve_cache_hits_total", "Submissions answered from the result cache.", m.cacheHits)
	counter("piumaserve_dedup_hits_total", "Submissions collapsed onto an in-flight run.", m.dedupHits)
	counter("piumaserve_cache_evictions_total", "Cached results evicted by capacity.", m.evicted)

	fmt.Fprintf(w, "# HELP piumaserve_runs_rejected_total Submissions refused, by reason.\n# TYPE piumaserve_runs_rejected_total counter\n")
	reasons := make([]string, 0, len(m.rejected))
	for r := range m.rejected {
		reasons = append(reasons, r)
	}
	sort.Strings(reasons)
	for _, r := range reasons {
		fmt.Fprintf(w, "piumaserve_runs_rejected_total{reason=%q} %d\n", r, m.rejected[r])
	}

	fmt.Fprintf(w, "# HELP piumaserve_queue_depth Accepted runs waiting for a worker.\n# TYPE piumaserve_queue_depth gauge\npiumaserve_queue_depth %d\n", queueDepth)
	drainingVal := 0
	if draining {
		drainingVal = 1
	}
	fmt.Fprintf(w, "# HELP piumaserve_draining Whether shutdown has begun.\n# TYPE piumaserve_draining gauge\npiumaserve_draining %d\n", drainingVal)

	fmt.Fprintf(w, "# HELP piumaserve_run_duration_seconds Successful run duration by experiment.\n# TYPE piumaserve_run_duration_seconds histogram\n")
	exps := make([]string, 0, len(m.durations))
	for id := range m.durations {
		exps = append(exps, id)
	}
	sort.Strings(exps)
	for _, id := range exps {
		h := m.durations[id]
		cum := uint64(0)
		for i, bound := range latencyBounds {
			cum += h.counts[i]
			fmt.Fprintf(w, "piumaserve_run_duration_seconds_bucket{experiment=%q,le=\"%g\"} %d\n", id, bound, cum)
		}
		cum += h.counts[len(latencyBounds)]
		fmt.Fprintf(w, "piumaserve_run_duration_seconds_bucket{experiment=%q,le=\"+Inf\"} %d\n", id, cum)
		fmt.Fprintf(w, "piumaserve_run_duration_seconds_sum{experiment=%q} %g\n", id, h.sum)
		fmt.Fprintf(w, "piumaserve_run_duration_seconds_count{experiment=%q} %d\n", id, h.n)
	}
}
