package serve

import (
	"io"
	"time"

	"piumagcn/internal/obs"
)

// metrics adapts the service's counters onto the shared obs.Registry:
// run lifecycle counters, cache/dedup/rejection counters, a fixed-
// bucket run-duration histogram per experiment, and the aggregated
// simulated-machine counters harvested from completed runs' profiles.
// Families are registered in the order the /metrics endpoint has always
// rendered them, so the exposition output of the pre-registry
// implementation is preserved byte for byte (locked in by a golden
// test), with the simulation families appended after it.
type metrics struct {
	reg *obs.Registry

	submitted *obs.Counter
	started   *obs.Counter
	completed *obs.Counter
	failed    *obs.Counter
	canceled  *obs.Counter
	cacheHits *obs.Counter
	dedupHits *obs.Counter
	evicted   *obs.Counter
	rejected  *obs.CounterVec

	queueDepth *obs.Gauge
	draining   *obs.Gauge
	durations  *obs.HistogramVec

	simEvents *obs.CounterVec
	simBusy   *obs.CounterVec

	// Resilience families (registered after the simulation families so
	// the pre-existing exposition prefix stays byte-identical).
	timedOut      *obs.Counter
	retries       *obs.Counter
	panics        *obs.Counter
	faultSeverity *obs.GaugeVec

	// Durability families (appended after the resilience families, same
	// byte-compatibility discipline).
	recovered      *obs.Counter
	journalBytes   *obs.Gauge
	quarantined    *obs.Counter
	journalAppends *obs.Counter

	// SLO-class families (appended last, same discipline). The class
	// label is bounded to the workload vocabulary plus "other" and "":
	// arbitrary header values never mint new series.
	classRequests *obs.CounterVec
	classLatency  *obs.HistogramVec
}

// latencyBounds are the histogram bucket upper bounds in seconds.
// Quick-option runs land in the millisecond buckets; full-fidelity
// simulator sweeps reach into the minutes.
var latencyBounds = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 1, 5, 25, 100, 500}

func newMetrics() *metrics {
	reg := obs.NewRegistry()
	return &metrics{
		reg:       reg,
		submitted: reg.Counter("piumaserve_runs_submitted_total", "Runs accepted into the queue."),
		started:   reg.Counter("piumaserve_runs_started_total", "Runs picked up by a worker."),
		completed: reg.Counter("piumaserve_runs_completed_total", "Runs finished successfully."),
		failed:    reg.Counter("piumaserve_runs_failed_total", "Runs that returned an error."),
		canceled:  reg.Counter("piumaserve_runs_canceled_total", "Runs canceled or timed out."),
		cacheHits: reg.Counter("piumaserve_cache_hits_total", "Submissions answered from the result cache."),
		dedupHits: reg.Counter("piumaserve_dedup_hits_total", "Submissions collapsed onto an in-flight run."),
		evicted:   reg.Counter("piumaserve_cache_evictions_total", "Cached results evicted by capacity."),
		rejected:  reg.CounterVec("piumaserve_runs_rejected_total", "Submissions refused, by reason.", "reason"),

		queueDepth: reg.Gauge("piumaserve_queue_depth", "Accepted runs waiting for a worker."),
		draining:   reg.Gauge("piumaserve_draining", "Whether shutdown has begun."),
		durations: reg.HistogramVec("piumaserve_run_duration_seconds", "Successful run duration by experiment.",
			latencyBounds, "experiment"),

		simEvents: reg.CounterVec("piumaserve_sim_events_total", "Simulation events processed, by experiment.", "experiment"),
		simBusy:   reg.CounterVec("piumaserve_sim_busy_seconds_total", "Simulated component busy time, by component class.", "class"),

		timedOut: reg.Counter("piumaserve_runs_timed_out_total", "Runs killed by the run timeout."),
		retries:  reg.Counter("piumaserve_run_retries_total", "Transient-failure retries executed."),
		panics:   reg.Counter("piumaserve_run_panics_total", "Experiment panics recovered by the worker pool."),
		faultSeverity: reg.GaugeVec("piumaserve_fault_severity",
			"Severity of the most recent fault-injected run, by experiment.", "experiment"),

		recovered:    reg.Counter("piumaserve_recovered_runs_total", "Runs restored from the journal at startup."),
		journalBytes: reg.Gauge("piumaserve_journal_bytes", "Current size of the run journal."),
		quarantined: reg.Counter("piumaserve_quarantined_records_total",
			"Malformed journal records skipped at startup, plus one per quarantined corrupt tail."),
		journalAppends: reg.Counter("piumaserve_journal_append_errors_total",
			"Lifecycle records that failed to reach the journal."),

		classRequests: reg.CounterVec("piumaserve_class_requests_total",
			"Run submissions by SLO class (X-SLO-Class header; bounded vocabulary).", "class"),
		classLatency: reg.HistogramVec("piumaserve_class_request_seconds",
			"Submit-request service time by SLO class.", latencyBounds, "class"),
	}
}

// observeClass records one submit request under its SLO class. The
// header value is free-form client input, so it is normalized onto the
// fixed vocabulary here: every With call below passes a string literal,
// which is how the metriclabels analyzer proves the label bounded.
func (m *metrics) observeClass(class string, seconds float64) {
	switch class {
	case "gold":
		m.classObserve("gold", seconds)
	case "silver":
		m.classObserve("silver", seconds)
	case "bronze":
		m.classObserve("bronze", seconds)
	case "batch":
		m.classObserve("batch", seconds)
	case "":
		m.classObserve("none", seconds)
	default:
		m.classObserve("other", seconds)
	}
}

func (m *metrics) classObserve(class string, seconds float64) {
	m.classRequests.With(class).Inc()
	m.classLatency.With(class).Observe(seconds)
}

func (m *metrics) incSubmitted() { m.submitted.Inc() }
func (m *metrics) incStarted()   { m.started.Inc() }
func (m *metrics) incFailed()    { m.failed.Inc() }
func (m *metrics) incCanceled()  { m.canceled.Inc() }
func (m *metrics) incCacheHit()  { m.cacheHits.Inc() }
func (m *metrics) incDedupHit()  { m.dedupHits.Inc() }
func (m *metrics) incEvicted()   { m.evicted.Inc() }

func (m *metrics) incRetried()  { m.retries.Inc() }
func (m *metrics) incPanicked() { m.panics.Inc() }

// incTimedOut counts a timeout kill. The legacy canceled counter keeps
// covering timeouts too (its help text has always read "canceled or
// timed out"), so dashboards built on it see no discontinuity; the new
// counter splits the timeout share out.
func (m *metrics) incTimedOut() {
	m.canceled.Inc()
	m.timedOut.Inc()
}

func (m *metrics) setFaultSeverity(experimentID string, sev float64) {
	m.faultSeverity.With(experimentID).Set(sev)
}

func (m *metrics) incRejected(reason string) { m.rejected.With(reason).Inc() }

func (m *metrics) addRecovered(n int)     { m.recovered.Add(float64(n)) }
func (m *metrics) addQuarantined(n int)   { m.quarantined.Add(float64(n)) }
func (m *metrics) incJournalAppendError() { m.journalAppends.Inc() }

func (m *metrics) observeCompleted(experimentID string, d time.Duration) {
	m.completed.Inc()
	m.durations.With(experimentID).Observe(d.Seconds())
}

// recordProfile folds a completed run's simulation profile into the
// aggregate sim counters.
func (m *metrics) recordProfile(experimentID string, p *obs.Profile) {
	if p == nil {
		return
	}
	for _, run := range p.Runs {
		m.simEvents.With(experimentID).Add(float64(run.Events))
		for _, c := range run.Classes {
			m.simBusy.With(c.Class).Add(c.BusySeconds)
		}
	}
}

// render writes the Prometheus text exposition of every metric plus
// the live gauges supplied by the server.
func (m *metrics) render(w io.Writer, queueDepth int, draining bool, journalBytes int64) {
	m.queueDepth.Set(float64(queueDepth))
	d := 0.0
	if draining {
		d = 1
	}
	m.draining.Set(d)
	m.journalBytes.Set(float64(journalBytes))
	m.reg.Render(w)
}
