package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"

	"piumagcn/internal/bench"
)

// SLOClassHeader carries a submission's SLO class end to end: load
// generators (internal/workload) set it per request, and the service
// tracks per-class request counts and latencies under it (bounded to
// the fixed class vocabulary — see classRequest in metrics.go).
const SLOClassHeader = "X-SLO-Class"

// ReplicaHeader identifies which serving replica produced a response.
// piumaserve sets it on every response when started with a replica
// name; the gate (internal/gate) reads it to attribute fan-out
// responses and forwards it to its own clients.
const ReplicaHeader = "X-Piuma-Replica"

// DeadlineHeader carries the caller's remaining deadline budget in
// whole milliseconds, end to end: the client stamps it from its
// context deadline, the gate decrements it by however long it held the
// request before forwarding, and the replica caps the run's execution
// budget with whatever is left — so a run never burns simulation time
// its caller has already given up on. The value is advisory metadata:
// absent or malformed budgets are ignored, never rejected.
const DeadlineHeader = "X-Piuma-Deadline-Ms"

// DefaultHTTPClient returns the hardened client NewClient installs
// when the caller passes nil: every phase of a request that can stall
// forever against a dead or wedged server is bounded (dial, TLS
// handshake, response headers), and the connection pool is sized for
// load-generation fan-out rather than net/http's two-idle-conns
// default. There is deliberately no overall Client.Timeout: a
// ?wait=true submission legitimately blocks until the run completes,
// so end-to-end deadlines belong to the caller's context. Callers
// whose runs exceed the response-header bound must pass their own
// client.
func DefaultHTTPClient() *http.Client {
	return &http.Client{
		Transport: &http.Transport{
			DialContext: (&net.Dialer{
				Timeout:   10 * time.Second,
				KeepAlive: 30 * time.Second,
			}).DialContext,
			TLSHandshakeTimeout: 10 * time.Second,
			// A ?wait=true submit writes no headers until the run
			// finishes, so this is the ceiling on one synchronous run.
			ResponseHeaderTimeout: 10 * time.Minute,
			MaxIdleConns:          512,
			MaxIdleConnsPerHost:   256,
			IdleConnTimeout:       90 * time.Second,
		},
	}
}

// Client is the typed HTTP client of the run API, shared by
// cmd/piumaload and tests. The zero value is not usable: construct with
// NewClient.
type Client struct {
	baseURL string
	http    *http.Client

	// Idempotent-GET retry policy (SetRetries). Retrying is safe only
	// for reads: Healthz and run-status polls are re-issued on transient
	// transport errors with seeded jittered backoff, bounded by the
	// caller's context.
	retries int
	backoff time.Duration
	mu      sync.Mutex
	rng     *rand.Rand
}

// NewClient targets a piumaserve (or httptest) base URL like
// "http://127.0.0.1:8080". With a nil httpClient the hardened
// DefaultHTTPClient is installed — dial, TLS-handshake and
// response-header timeouts, so a health probe or fan-out request
// against a dead backend can never hang its caller's goroutine
// forever. Per-request deadlines come from the caller's context
// either way. Idempotent GETs retry twice on transport errors by
// default; tune or disable with SetRetries.
func NewClient(baseURL string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = DefaultHTTPClient()
	}
	return &Client{
		baseURL: baseURL,
		http:    httpClient,
		retries: 2,
		backoff: 50 * time.Millisecond,
		rng:     rand.New(rand.NewSource(1)),
	}
}

// SetRetries tunes the idempotent-GET retry policy: up to n retries
// after the first attempt (0 disables), exponential backoff from base
// with full seeded jitter on the upper half. The gate's health prober
// sets n=0 — client-side retries would hide exactly the flakiness the
// prober exists to count.
func (c *Client) SetRetries(n int, base time.Duration, seed int64) {
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	c.mu.Lock()
	c.retries = n
	c.backoff = base
	c.rng = rand.New(rand.NewSource(seed))
	c.mu.Unlock()
}

// retryDelay is the sleep before retry attempt (1-based): exponential
// from the base with seeded full jitter on the upper half, mirroring
// every other backoff in the repo.
func (c *Client) retryDelay(attempt int) time.Duration {
	d := c.backoff
	if attempt > 1 {
		d <<= min(attempt-1, 6)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return d/2 + time.Duration(c.rng.Int63n(int64(d/2)+1))
}

// doIdempotent issues a request built by build, retrying transient
// transport errors up to the configured retry budget. The request is
// rebuilt per attempt (bodies are nil for the GETs this serves, but a
// fresh request also resets per-attempt header state). Retries stop
// the moment the caller's context dies.
func (c *Client) doIdempotent(ctx context.Context, build func() (*http.Request, error)) (*http.Response, error) {
	c.mu.Lock()
	retries := c.retries
	c.mu.Unlock()
	var lastErr error
	for attempt := 0; ; attempt++ {
		req, err := build()
		if err != nil {
			return nil, err
		}
		resp, err := c.http.Do(req)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if ctx.Err() != nil || attempt >= retries {
			return nil, lastErr
		}
		t := time.NewTimer(c.retryDelay(attempt + 1))
		select {
		case <-ctx.Done():
			t.Stop()
			return nil, lastErr
		case <-t.C:
		}
	}
}

// stampDeadline copies the context's remaining deadline budget (if
// any) onto the request as whole milliseconds, starting end-to-end
// deadline propagation.
func stampDeadline(ctx context.Context, req *http.Request) {
	if d, ok := ctx.Deadline(); ok {
		if ms := time.Until(d).Milliseconds(); ms > 0 {
			req.Header.Set(DeadlineHeader, strconv.FormatInt(max(1, ms), 10))
		}
	}
}

// Base returns the client's base URL.
func (c *Client) Base() string {
	return c.baseURL
}

// SubmitAndWait submits one run with ?wait=true and blocks until it
// reaches a terminal status. It returns the decoded run resource and
// the HTTP status code; err is non-nil only for transport-level
// failures or undecodable bodies — API-level rejections (429 queue
// full, 503 draining, 404 unknown experiment) come back as the status
// code with a zero resource, so load generators can classify
// backpressure without string-matching errors. class, when non-empty,
// rides in the X-SLO-Class header.
func (c *Client) SubmitAndWait(ctx context.Context, experiment string, o bench.Options, class string) (RunResource, int, error) {
	res, status, _, err := c.SubmitAndWaitInfo(ctx, experiment, o, class)
	return res, status, err
}

// SubmitAndWaitInfo is SubmitAndWait plus the response's Retry-After
// duration (zero when absent), so callers can honor backpressure
// hints on 429/503 instead of guessing.
//
// Submission survives a replica restart: the run ID is a content
// address computed client-side, so when the POST dies on the wire the
// client polls GET /v1/runs/{id}?wait=true — if the run landed before
// the crash the poll rides it to completion, and a 404 (the run never
// arrived, or the journal lost it) re-POSTs. Either way the caller's
// context bounds the whole dance.
func (c *Client) SubmitAndWaitInfo(ctx context.Context, experiment string, o bench.Options, class string) (RunResource, int, time.Duration, error) {
	body, err := json.Marshal(struct {
		Experiment string        `json:"experiment"`
		Options    bench.Options `json:"options"`
	}{experiment, o})
	if err != nil {
		return RunResource{}, 0, 0, fmt.Errorf("serve: encoding submit body: %w", err)
	}
	id := RunID(experiment, o)
	var lastErr error
	for resubmits := 0; resubmits < 4; resubmits++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.baseURL+"/v1/runs?wait=true", bytes.NewReader(body))
		if err != nil {
			return RunResource{}, 0, 0, err
		}
		req.Header.Set("Content-Type", "application/json")
		if class != "" {
			req.Header.Set(SLOClassHeader, class)
		}
		stampDeadline(ctx, req)
		resp, err := c.http.Do(req)
		if err != nil {
			// The POST died on the wire; the run may or may not have
			// landed. Poll the content address to find out.
			lastErr = err
			if ctx.Err() != nil {
				return RunResource{}, 0, 0, lastErr
			}
			res, status, rerr := c.Run(ctx, id, true)
			if rerr != nil {
				return RunResource{}, 0, 0, rerr
			}
			if status == http.StatusNotFound {
				// The run never arrived (or a restart lost the journal
				// tail). Re-POST; dedup makes a double landing harmless.
				continue
			}
			return res, status, 0, nil
		}
		return decodeRunResponse(resp)
	}
	return RunResource{}, 0, 0, fmt.Errorf("serve: submission kept dying on the wire: %w", lastErr)
}

// Run fetches one run by ID; wait=true blocks until the run is
// terminal. A 404 comes back as the status code with a nil error
// (callers distinguish "unknown run" from transport failure). The
// fetch is an idempotent GET, so it rides the client's retry policy
// through transient transport errors — including the window where a
// restarting replica is not yet listening.
func (c *Client) Run(ctx context.Context, id string, wait bool) (RunResource, int, error) {
	u := c.baseURL + "/v1/runs/" + id
	if wait {
		u += "?wait=true"
	}
	resp, err := c.doIdempotent(ctx, func() (*http.Request, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
		if err != nil {
			return nil, err
		}
		stampDeadline(ctx, req)
		return req, nil
	})
	if err != nil {
		return RunResource{}, 0, err
	}
	res, status, _, err := decodeRunResponse(resp)
	return res, status, err
}

// decodeRunResponse decodes a run-resource response, folding non-2xx
// statuses into (code, nil-error) and extracting any Retry-After hint.
func decodeRunResponse(resp *http.Response) (RunResource, int, time.Duration, error) {
	defer resp.Body.Close()
	retryAfter := parseRetryAfter(resp.Header.Get("Retry-After"), time.Now())
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		// Drain the error body so the connection is reusable; the status
		// code is the signal.
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return RunResource{}, resp.StatusCode, retryAfter, nil
	}
	var res RunResource
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		return RunResource{}, resp.StatusCode, retryAfter, fmt.Errorf("serve: decoding run resource: %w", err)
	}
	return res, resp.StatusCode, retryAfter, nil
}

// maxRetryAfter caps honored backpressure hints. The HTTP-date form is
// computed against the client's clock, so skew between the two machines
// leaks straight into the wait — a hint pointing hours out says more
// about a wrong clock than about real backpressure.
const maxRetryAfter = 15 * time.Minute

// parseRetryAfter reads a Retry-After value in either RFC 9110
// §10.2.3 form — delta-seconds or an HTTP-date — as the wait relative
// to now. Malformed values are zero; a date already past (server ahead
// of us, or a slow response) clamps to zero; anything beyond
// maxRetryAfter clamps to the cap.
func parseRetryAfter(v string, now time.Time) time.Duration {
	if v == "" {
		return 0
	}
	var d time.Duration
	if secs, err := strconv.ParseInt(v, 10, 64); err == nil {
		if secs < 0 {
			return 0
		}
		d = time.Duration(secs) * time.Second
	} else if when, derr := http.ParseTime(v); derr == nil {
		d = when.Sub(now)
	} else {
		return 0
	}
	if d < 0 {
		return 0
	}
	return min(d, maxRetryAfter)
}

// Healthz checks liveness; it returns an error while the server is
// unreachable or draining.
func (c *Client) Healthz(ctx context.Context) error {
	resp, err := c.doIdempotent(ctx, func() (*http.Request, error) {
		return http.NewRequestWithContext(ctx, http.MethodGet, c.baseURL+"/healthz", nil)
	})
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("serve: healthz returned %d", resp.StatusCode)
	}
	return nil
}

// Experiments lists the served registry.
func (c *Client) Experiments(ctx context.Context) ([]ExperimentResource, error) {
	resp, err := c.doIdempotent(ctx, func() (*http.Request, error) {
		return http.NewRequestWithContext(ctx, http.MethodGet, c.baseURL+"/v1/experiments", nil)
	})
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("serve: /v1/experiments returned %d", resp.StatusCode)
	}
	var out []ExperimentResource
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return out, nil
}
