package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"piumagcn/internal/bench"
)

// SLOClassHeader carries a submission's SLO class end to end: load
// generators (internal/workload) set it per request, and the service
// tracks per-class request counts and latencies under it (bounded to
// the fixed class vocabulary — see classRequest in metrics.go).
const SLOClassHeader = "X-SLO-Class"

// ReplicaHeader identifies which serving replica produced a response.
// piumaserve sets it on every response when started with a replica
// name; the gate (internal/gate) reads it to attribute fan-out
// responses and forwards it to its own clients.
const ReplicaHeader = "X-Piuma-Replica"

// DefaultHTTPClient returns the hardened client NewClient installs
// when the caller passes nil: every phase of a request that can stall
// forever against a dead or wedged server is bounded (dial, TLS
// handshake, response headers), and the connection pool is sized for
// load-generation fan-out rather than net/http's two-idle-conns
// default. There is deliberately no overall Client.Timeout: a
// ?wait=true submission legitimately blocks until the run completes,
// so end-to-end deadlines belong to the caller's context. Callers
// whose runs exceed the response-header bound must pass their own
// client.
func DefaultHTTPClient() *http.Client {
	return &http.Client{
		Transport: &http.Transport{
			DialContext: (&net.Dialer{
				Timeout:   10 * time.Second,
				KeepAlive: 30 * time.Second,
			}).DialContext,
			TLSHandshakeTimeout: 10 * time.Second,
			// A ?wait=true submit writes no headers until the run
			// finishes, so this is the ceiling on one synchronous run.
			ResponseHeaderTimeout: 10 * time.Minute,
			MaxIdleConns:          512,
			MaxIdleConnsPerHost:   256,
			IdleConnTimeout:       90 * time.Second,
		},
	}
}

// Client is the typed HTTP client of the run API, shared by
// cmd/piumaload and tests. The zero value is not usable: construct with
// NewClient.
type Client struct {
	baseURL string
	http    *http.Client
}

// NewClient targets a piumaserve (or httptest) base URL like
// "http://127.0.0.1:8080". With a nil httpClient the hardened
// DefaultHTTPClient is installed — dial, TLS-handshake and
// response-header timeouts, so a health probe or fan-out request
// against a dead backend can never hang its caller's goroutine
// forever. Per-request deadlines come from the caller's context
// either way.
func NewClient(baseURL string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = DefaultHTTPClient()
	}
	return &Client{baseURL: baseURL, http: httpClient}
}

// Base returns the client's base URL.
func (c *Client) Base() string {
	return c.baseURL
}

// SubmitAndWait submits one run with ?wait=true and blocks until it
// reaches a terminal status. It returns the decoded run resource and
// the HTTP status code; err is non-nil only for transport-level
// failures or undecodable bodies — API-level rejections (429 queue
// full, 503 draining, 404 unknown experiment) come back as the status
// code with a zero resource, so load generators can classify
// backpressure without string-matching errors. class, when non-empty,
// rides in the X-SLO-Class header.
func (c *Client) SubmitAndWait(ctx context.Context, experiment string, o bench.Options, class string) (RunResource, int, error) {
	body, err := json.Marshal(struct {
		Experiment string        `json:"experiment"`
		Options    bench.Options `json:"options"`
	}{experiment, o})
	if err != nil {
		return RunResource{}, 0, fmt.Errorf("serve: encoding submit body: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.baseURL+"/v1/runs?wait=true", bytes.NewReader(body))
	if err != nil {
		return RunResource{}, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	if class != "" {
		req.Header.Set(SLOClassHeader, class)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return RunResource{}, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		// Drain the error body so the connection is reusable; the status
		// code is the signal.
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return RunResource{}, resp.StatusCode, nil
	}
	var res RunResource
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		return RunResource{}, resp.StatusCode, fmt.Errorf("serve: decoding run resource: %w", err)
	}
	return res, resp.StatusCode, nil
}

// Healthz checks liveness; it returns an error while the server is
// unreachable or draining.
func (c *Client) Healthz(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.baseURL+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("serve: healthz returned %d", resp.StatusCode)
	}
	return nil
}

// Experiments lists the served registry.
func (c *Client) Experiments(ctx context.Context) ([]ExperimentResource, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.baseURL+"/v1/experiments", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("serve: /v1/experiments returned %d", resp.StatusCode)
	}
	var out []ExperimentResource
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return out, nil
}
