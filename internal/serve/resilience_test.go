package serve_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"piumagcn/internal/bench"
	"piumagcn/internal/serve"
)

// panicExperiment panics with value v on every execution.
func panicExperiment(id string, v any) bench.Experiment {
	return bench.Experiment{
		ID:    id,
		Title: "test panicker",
		Run: func(ctx context.Context, o bench.Options) (*bench.Report, error) {
			panic(v)
		},
	}
}

// sweepExperiment simulates a multi-point sweep: each point checkpoints
// through the context, `block` (when non-nil) stalls the sweep between
// points until closed or the context dies, and failAt (1-based attempt
// number) makes that attempt fail transiently after one point.
func sweepExperiment(id string, points int, block <-chan struct{}, attempts *atomic.Int64, failAttempt int64) bench.Experiment {
	return bench.Experiment{
		ID:    id,
		Title: "test sweep",
		Run: func(ctx context.Context, o bench.Options) (*bench.Report, error) {
			attempt := int64(0)
			if attempts != nil {
				attempt = attempts.Add(1)
			}
			cp := bench.CheckpointFrom(ctx)
			for i := 0; i < points; i++ {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				label := fmt.Sprintf("%s point=%d", id, i)
				if _, done := cp.Lookup(label); done {
					continue
				}
				cp.Complete(label, i, fmt.Sprintf("value %d", i))
				if failAttempt > 0 && attempt == failAttempt {
					return nil, bench.Transient(fmt.Errorf("attempt %d: flaky backend", attempt))
				}
				if block != nil {
					select {
					case <-block:
					case <-ctx.Done():
						return nil, ctx.Err()
					}
				}
			}
			r := &bench.Report{ID: id, Title: "test sweep"}
			r.Add("sweep", fmt.Sprintf("%d points", points))
			return r, nil
		},
	}
}

// TestPanicBecomesFailedRun: a panicking experiment must surface as a
// failed run carrying the panic message, and the server must keep
// serving — the worker pool is not eroded (regression test: before the
// recover, each panic killed one worker goroutine until the pool was
// empty and runs queued forever).
func TestPanicBecomesFailedRun(t *testing.T) {
	var started atomic.Int64
	release := make(chan struct{})
	s := newTestServer(t, serve.Config{
		Workers: 1, // one worker: a single leaked panic would deadlock the follow-up run
		Experiments: []bench.Experiment{
			panicExperiment("boom", "sparse matrix went missing"),
			blockingExperiment("follow-up", &started, release),
		},
	})

	// Panic the lone worker several times; every run must still finish.
	for seed := int64(0); seed < 3; seed++ {
		o := bench.QuickOptions()
		o.Seed = seed
		v, cached, err := s.Submit("boom", o, false)
		if err != nil || cached {
			t.Fatalf("submit: cached=%v err=%v", cached, err)
		}
		got := waitStatus(t, s, v.ID, serve.StatusFailed)
		if !strings.Contains(got.Err, "experiment panicked") ||
			!strings.Contains(got.Err, "sparse matrix went missing") {
			t.Fatalf("failed run error %q missing panic message", got.Err)
		}
		if !strings.Contains(got.Err, "resilience_test.go") && !strings.Contains(got.Err, "goroutine") {
			t.Fatalf("failed run error carries no stack:\n%s", got.Err)
		}
	}

	// The pool must still drain new work.
	v, _, err := s.Submit("follow-up", bench.QuickOptions(), false)
	if err != nil {
		t.Fatal(err)
	}
	close(release)
	waitStatus(t, s, v.ID, serve.StatusDone)
	if started.Load() == 0 {
		t.Fatal("worker pool eroded: follow-up run never started")
	}
}

// TestTimeoutReportsDistinctStatusWithPartialReport: a run killed by
// RunTimeout mid-sweep must report the "timeout" terminal status (not
// "canceled") and carry a partial report of the checkpointed points.
func TestTimeoutReportsDistinctStatusWithPartialReport(t *testing.T) {
	block := make(chan struct{}) // never closed: the sweep stalls after point 0
	s := newTestServer(t, serve.Config{
		Workers:     1,
		RunTimeout:  30 * time.Millisecond,
		Experiments: []bench.Experiment{sweepExperiment("sweep", 4, block, nil, 0)},
	})
	v, _, err := s.Submit("sweep", bench.QuickOptions(), false)
	if err != nil {
		t.Fatal(err)
	}
	got := waitStatus(t, s, v.ID, serve.StatusTimeout)
	if !strings.Contains(got.Err, "timeout") {
		t.Fatalf("timeout run error = %q", got.Err)
	}
	if got.Report == nil {
		t.Fatal("timed-out run has no partial report")
	}
	out := got.Report.String()
	if !strings.Contains(out, "(partial)") || !strings.Contains(out, "sweep point=0") {
		t.Fatalf("partial report missing checkpointed point:\n%s", out)
	}
	// A timed-out record must be resubmittable, not served from cache.
	v2, cached, err := s.Submit("sweep", bench.QuickOptions(), false)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("timed-out run was served as a cache hit")
	}
	waitStatus(t, s, v2.ID, serve.StatusTimeout)
}

// TestUserCancelStaysCanceled: an explicit cancel during a sweep point
// must still report "canceled" — the timeout status is reserved for
// deadline kills — while keeping the partial report of completed points.
func TestUserCancelStaysCanceled(t *testing.T) {
	block := make(chan struct{})
	s := newTestServer(t, serve.Config{
		Workers:     1,
		RunTimeout:  time.Hour, // present but far away: cancel must win the classification
		Experiments: []bench.Experiment{sweepExperiment("sweep", 4, block, nil, 0)},
	})
	v, _, err := s.Submit("sweep", bench.QuickOptions(), false)
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, s, v.ID, serve.StatusRunning)
	if _, err := s.Cancel(v.ID); err != nil {
		t.Fatal(err)
	}
	got := waitStatus(t, s, v.ID, serve.StatusCanceled)
	if got.Report == nil || !strings.Contains(got.Report.String(), "sweep point=0") {
		t.Fatal("canceled run lost its partial report")
	}
}

// TestCancelWhileQueued: canceling a run that never left the queue must
// terminate it as canceled with no report and must not wedge the worker
// that eventually pops it.
func TestCancelWhileQueued(t *testing.T) {
	var started atomic.Int64
	release := make(chan struct{})
	s := newTestServer(t, serve.Config{
		Workers: 1,
		Experiments: []bench.Experiment{
			blockingExperiment("blocker", &started, release),
			sweepExperiment("sweep", 2, nil, nil, 0),
		},
	})
	// Occupy the lone worker.
	bv, _, err := s.Submit("blocker", bench.QuickOptions(), false)
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, s, bv.ID, serve.StatusRunning)
	// Queue a second run and cancel it before a worker picks it up.
	qv, _, err := s.Submit("sweep", bench.QuickOptions(), false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Cancel(qv.ID); err != nil {
		t.Fatal(err)
	}
	got := waitStatus(t, s, qv.ID, serve.StatusCanceled)
	if got.Report != nil {
		t.Fatal("never-started run has a report")
	}
	// Release the worker; it must skip the canceled record and stay
	// available for fresh work.
	close(release)
	waitStatus(t, s, bv.ID, serve.StatusDone)
	fresh, _, err := s.Submit("sweep", bench.QuickOptions(), false)
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, s, fresh.ID, serve.StatusDone)
}

// TestTransientFailureRetriesAndResumes: a run whose first attempt
// fails transiently must be retried and succeed, with the retry
// resuming from the checkpoint instead of re-running completed points.
func TestTransientFailureRetriesAndResumes(t *testing.T) {
	var attempts atomic.Int64
	s := newTestServer(t, serve.Config{
		Workers:     1,
		MaxRetries:  2,
		Experiments: []bench.Experiment{sweepExperiment("flaky", 3, nil, &attempts, 1)},
	})
	v, _, err := s.Submit("flaky", bench.QuickOptions(), false)
	if err != nil {
		t.Fatal(err)
	}
	got := waitStatus(t, s, v.ID, serve.StatusDone)
	if attempts.Load() != 2 {
		t.Fatalf("experiment ran %d times, want 2 (fail + resume)", attempts.Load())
	}
	if got.Retries != 1 {
		t.Fatalf("RunView.Retries = %d, want 1", got.Retries)
	}
	if got.Report == nil || !strings.Contains(got.Report.String(), "3 points") {
		t.Fatalf("retried run did not complete the sweep: %+v", got.Report)
	}
}

// TestRetriesExhaustedReportsFailed: when every attempt fails
// transiently, the run fails after MaxRetries extra attempts and keeps
// the partial report.
func TestRetriesExhaustedReportsFailed(t *testing.T) {
	var attempts atomic.Int64
	exp := bench.Experiment{
		ID:    "always-flaky",
		Title: "always flaky",
		Run: func(ctx context.Context, o bench.Options) (*bench.Report, error) {
			n := attempts.Add(1)
			cp := bench.CheckpointFrom(ctx)
			cp.Complete(fmt.Sprintf("attempt-%d", n), n, "partial work")
			return nil, bench.Transient(errors.New("backend still down"))
		},
	}
	s := newTestServer(t, serve.Config{Workers: 1, MaxRetries: 2, Experiments: []bench.Experiment{exp}})
	v, _, err := s.Submit("always-flaky", bench.QuickOptions(), false)
	if err != nil {
		t.Fatal(err)
	}
	got := waitStatus(t, s, v.ID, serve.StatusFailed)
	if attempts.Load() != 3 { // initial + 2 retries
		t.Fatalf("experiment ran %d times, want 3", attempts.Load())
	}
	if got.Retries != 2 {
		t.Fatalf("RunView.Retries = %d, want 2", got.Retries)
	}
	if got.Report == nil || !strings.Contains(got.Report.String(), "attempt-1") {
		t.Fatal("failed run lost its partial report")
	}
}

// TestNonTransientFailureIsNotRetried: plain errors must not consume
// retries (regression guard for the pre-existing failure semantics).
func TestNonTransientFailureIsNotRetried(t *testing.T) {
	var attempts atomic.Int64
	exp := bench.Experiment{
		ID:    "hard-fail",
		Title: "hard failure",
		Run: func(ctx context.Context, o bench.Options) (*bench.Report, error) {
			attempts.Add(1)
			return nil, errors.New("deterministic bug")
		},
	}
	s := newTestServer(t, serve.Config{Workers: 1, MaxRetries: 3, Experiments: []bench.Experiment{exp}})
	v, _, err := s.Submit("hard-fail", bench.QuickOptions(), false)
	if err != nil {
		t.Fatal(err)
	}
	got := waitStatus(t, s, v.ID, serve.StatusFailed)
	if attempts.Load() != 1 {
		t.Fatalf("non-transient failure ran %d times, want 1", attempts.Load())
	}
	if got.Retries != 0 {
		t.Fatalf("Retries = %d, want 0", got.Retries)
	}
}

// TestTimeoutRunExposesTimeoutOnWire: the JSON resource for a timed-out
// run must carry the distinct status so clients can tell a deadline
// kill from a user cancel.
func TestTimeoutRunExposesTimeoutOnWire(t *testing.T) {
	block := make(chan struct{})
	s := newTestServer(t, serve.Config{
		Workers:     1,
		RunTimeout:  20 * time.Millisecond,
		Experiments: []bench.Experiment{sweepExperiment("sweep", 4, block, nil, 0)},
	})
	v, _, err := s.Submit("sweep", bench.QuickOptions(), false)
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, s, v.ID, serve.StatusTimeout)
	w := doJSON(t, s.Handler(), "GET", "/v1/runs/"+v.ID, "")
	res := decodeRun(t, w)
	if res.Status != serve.StatusTimeout {
		t.Fatalf("wire status = %q, want %q", res.Status, serve.StatusTimeout)
	}
	if res.Report == nil {
		t.Fatal("wire resource missing the partial report")
	}
}
