// Package rmat implements the recursive-matrix (RMAT) random graph
// generator used by the paper for its linear function sweeps (Figure 2)
// and the power-16/power-22 workloads of Figure 9. The generator is the
// SNAP-equivalent recursive quadrant scheme: each edge picks one of four
// quadrants with probabilities (A, B, C, D) at every level of a
// scale-deep recursion.
//
// Two presets matter for the reproduction:
//
//   - PowerLaw (A=0.57, B=0.19, C=0.19, D=0.05): the classic skewed
//     distribution used for power-16/power-22.
//   - Uniform (A=B=C=D=0.25): degenerate RMAT equal to an Erdős–Rényi
//     G(n, m) sampler, the "uniform degree distribution" sweep of
//     Figure 2.
package rmat

import (
	"errors"
	"fmt"
	"math/rand"

	"piumagcn/internal/graph"
)

// Params configures a generation run.
type Params struct {
	// Scale is log2 of the number of vertices: |V| = 1 << Scale.
	Scale int
	// EdgeFactor is |E| / |V|; NumEdges = EdgeFactor * |V| edges are
	// sampled (before self-loop removal and coalescing).
	EdgeFactor int
	// A, B, C, D are the quadrant probabilities; they must be
	// non-negative and sum to 1 (within a small tolerance).
	A, B, C, D float64
	// Noise perturbs the quadrant probabilities at every recursion level
	// (SNAP's "noise" smoothing). Zero keeps the exact probabilities.
	Noise float64
	// Seed makes generation deterministic.
	Seed int64
}

// PowerLaw returns the classic skewed RMAT parameterization.
func PowerLaw(scale, edgeFactor int, seed int64) Params {
	return Params{Scale: scale, EdgeFactor: edgeFactor, A: 0.57, B: 0.19, C: 0.19, D: 0.05, Seed: seed}
}

// Uniform returns the uniform-degree parameterization used by the
// Figure 2 sweeps.
func Uniform(scale, edgeFactor int, seed int64) Params {
	return Params{Scale: scale, EdgeFactor: edgeFactor, A: 0.25, B: 0.25, C: 0.25, D: 0.25, Seed: seed}
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.Scale < 0 || p.Scale > 30 {
		return fmt.Errorf("rmat: scale %d out of range [0,30]", p.Scale)
	}
	if p.EdgeFactor < 0 {
		return errors.New("rmat: negative edge factor")
	}
	if p.A < 0 || p.B < 0 || p.C < 0 || p.D < 0 {
		return errors.New("rmat: negative quadrant probability")
	}
	sum := p.A + p.B + p.C + p.D
	if sum < 0.999 || sum > 1.001 {
		return fmt.Errorf("rmat: quadrant probabilities sum to %v, want 1", sum)
	}
	if p.Noise < 0 || p.Noise > 0.5 {
		return fmt.Errorf("rmat: noise %v out of range [0,0.5]", p.Noise)
	}
	return nil
}

// Generate samples an edge list. Self loops are kept (the GCN
// normalization adds the identity anyway); duplicate edges survive in the
// COO and are coalesced by graph.FromCOO.
func Generate(p Params) (*graph.COO, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := 1 << p.Scale
	ne := n * p.EdgeFactor
	rng := rand.New(rand.NewSource(p.Seed))
	edges := make([]graph.Edge, ne)
	for i := 0; i < ne; i++ {
		src, dst := sampleEdge(rng, p)
		edges[i] = graph.Edge{Src: int32(src), Dst: int32(dst), Weight: 1}
	}
	return &graph.COO{NumVertices: n, Edges: edges}, nil
}

// GenerateCSR is a convenience wrapper that also builds the CSR form.
func GenerateCSR(p Params) (*graph.CSR, error) {
	coo, err := Generate(p)
	if err != nil {
		return nil, err
	}
	return graph.FromCOO(coo)
}

func sampleEdge(rng *rand.Rand, p Params) (src, dst int) {
	a, b, c := p.A, p.B, p.C
	for level := 0; level < p.Scale; level++ {
		if p.Noise > 0 {
			// Symmetric perturbation that keeps the sum at 1 by
			// renormalizing.
			na := a * (1 - p.Noise + 2*p.Noise*rng.Float64())
			nb := b * (1 - p.Noise + 2*p.Noise*rng.Float64())
			nc := c * (1 - p.Noise + 2*p.Noise*rng.Float64())
			nd := (1 - a - b - c) * (1 - p.Noise + 2*p.Noise*rng.Float64())
			tot := na + nb + nc + nd
			a, b, c = na/tot, nb/tot, nc/tot
		}
		r := rng.Float64()
		half := 1 << (p.Scale - level - 1)
		switch {
		case r < a:
			// top-left: no bits set
		case r < a+b:
			dst += half
		case r < a+b+c:
			src += half
		default:
			src += half
			dst += half
		}
	}
	return src, dst
}

// GenerateByDensity produces a uniform graph with the given vertex count
// and adjacency-matrix density δ (|E| = δ·|V|²), the coordinate system of
// Figure 2. The vertex count need not be a power of two.
func GenerateByDensity(numVertices int, density float64, seed int64) (*graph.COO, error) {
	if numVertices <= 0 {
		return nil, errors.New("rmat: non-positive vertex count")
	}
	if density < 0 || density > 1 {
		return nil, fmt.Errorf("rmat: density %v out of range [0,1]", density)
	}
	ne := int64(density * float64(numVertices) * float64(numVertices))
	rng := rand.New(rand.NewSource(seed))
	edges := make([]graph.Edge, ne)
	for i := range edges {
		edges[i] = graph.Edge{
			Src:    int32(rng.Intn(numVertices)),
			Dst:    int32(rng.Intn(numVertices)),
			Weight: 1,
		}
	}
	return &graph.COO{NumVertices: numVertices, Edges: edges}, nil
}
