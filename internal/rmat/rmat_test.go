package rmat

import (
	"testing"
	"testing/quick"

	"piumagcn/internal/graph"
)

func TestGenerateDeterministic(t *testing.T) {
	p := PowerLaw(8, 8, 1234)
	a, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Edges) != len(b.Edges) {
		t.Fatal("nondeterministic edge count")
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, a.Edges[i], b.Edges[i])
		}
	}
}

func TestGenerateSizes(t *testing.T) {
	p := Uniform(10, 16, 7)
	coo, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if coo.NumVertices != 1024 {
		t.Fatalf("|V| = %d, want 1024", coo.NumVertices)
	}
	if len(coo.Edges) != 1024*16 {
		t.Fatalf("|E| = %d, want %d", len(coo.Edges), 1024*16)
	}
	if err := coo.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPowerLawIsSkewed(t *testing.T) {
	pl, err := GenerateCSR(PowerLaw(12, 16, 99))
	if err != nil {
		t.Fatal(err)
	}
	un, err := GenerateCSR(Uniform(12, 16, 99))
	if err != nil {
		t.Fatal(err)
	}
	plCV := graph.ComputeStats(pl).DegreeCV
	unCV := graph.ComputeStats(un).DegreeCV
	if plCV < 2*unCV {
		t.Fatalf("power-law CV %v not clearly above uniform CV %v", plCV, unCV)
	}
	if unCV > 0.5 {
		t.Fatalf("uniform CV %v too high", unCV)
	}
}

func TestValidate(t *testing.T) {
	bad := []Params{
		{Scale: -1, EdgeFactor: 1, A: 0.25, B: 0.25, C: 0.25, D: 0.25},
		{Scale: 31, EdgeFactor: 1, A: 0.25, B: 0.25, C: 0.25, D: 0.25},
		{Scale: 4, EdgeFactor: -1, A: 0.25, B: 0.25, C: 0.25, D: 0.25},
		{Scale: 4, EdgeFactor: 1, A: 0.5, B: 0.5, C: 0.25, D: 0.25},
		{Scale: 4, EdgeFactor: 1, A: -0.1, B: 0.6, C: 0.25, D: 0.25},
		{Scale: 4, EdgeFactor: 1, A: 0.25, B: 0.25, C: 0.25, D: 0.25, Noise: 0.9},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("case %d: expected validation error for %+v", i, p)
		}
	}
	if err := PowerLaw(4, 4, 0).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNoiseStillValid(t *testing.T) {
	p := PowerLaw(8, 8, 5)
	p.Noise = 0.1
	coo, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := coo.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateByDensity(t *testing.T) {
	coo, err := GenerateByDensity(500, 0.01, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := int(0.01 * 500 * 500)
	if len(coo.Edges) != want {
		t.Fatalf("|E| = %d, want %d", len(coo.Edges), want)
	}
	if err := coo.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := GenerateByDensity(0, 0.1, 0); err == nil {
		t.Fatal("expected error for zero vertices")
	}
	if _, err := GenerateByDensity(10, 1.5, 0); err == nil {
		t.Fatal("expected error for density > 1")
	}
}

// Property: every generated edge is within range for arbitrary valid
// scales and seeds, for both presets.
func TestQuickEdgesInRange(t *testing.T) {
	f := func(seed int64, scaleRaw, efRaw uint8, power bool) bool {
		scale := int(scaleRaw)%10 + 1
		ef := int(efRaw)%8 + 1
		var p Params
		if power {
			p = PowerLaw(scale, ef, seed)
		} else {
			p = Uniform(scale, ef, seed)
		}
		coo, err := Generate(p)
		if err != nil {
			return false
		}
		return coo.Validate() == nil && coo.NumVertices == 1<<scale
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
