package distributed

import (
	"testing"

	"piumagcn/internal/xeon"
)

func productsW() xeon.Workload {
	return xeon.Workload{V: 2_449_029, E: 61_859_140, Locality: 0.5}
}

func TestDefaultClusterValid(t *testing.T) {
	if err := DefaultCluster(4).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejects(t *testing.T) {
	muts := []func(*Cluster){
		func(c *Cluster) { c.Nodes = 0 },
		func(c *Cluster) { c.InterconnectBandwidth = 0 },
		func(c *Cluster) { c.MessageLatency = -1 },
		func(c *Cluster) { c.CutFraction = 1.5 },
		func(c *Cluster) { c.Node.ClockGHz = 0 },
	}
	for i, mut := range muts {
		c := DefaultCluster(2)
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Fatalf("mutation %d: expected validation error", i)
		}
	}
}

func TestEdgeCutGrowsAndSaturates(t *testing.T) {
	if cut := DefaultCluster(1).EdgeCutFraction(); cut != 0 {
		t.Fatalf("single node cut = %v", cut)
	}
	c2 := DefaultCluster(2).EdgeCutFraction()
	c8 := DefaultCluster(8).EdgeCutFraction()
	c1024 := DefaultCluster(1024).EdgeCutFraction()
	if !(c2 < c8) {
		t.Fatalf("cut should grow with nodes: %v %v", c2, c8)
	}
	if c1024 > 1-1.0/1024+1e-12 {
		t.Fatalf("cut %v exceeds the random limit", c1024)
	}
}

func TestSpMMTimeErrors(t *testing.T) {
	c := DefaultCluster(4)
	if _, err := c.SpMMTime(productsW(), 0); err == nil {
		t.Fatal("expected error for K=0")
	}
	c.Nodes = 0
	if _, err := c.SpMMTime(productsW(), 64); err == nil {
		t.Fatal("expected error for invalid cluster")
	}
}

// Section V-A / [24]: the cluster speeds up with nodes, but parallel
// efficiency decays, while PIUMA's DGAS scaling is perfect by
// construction.
func TestClusterEfficiencyDecays(t *testing.T) {
	w := productsW()
	const k = 256
	e2, err := DefaultCluster(2).ParallelEfficiency(w, k)
	if err != nil {
		t.Fatal(err)
	}
	e16, err := DefaultCluster(16).ParallelEfficiency(w, k)
	if err != nil {
		t.Fatal(err)
	}
	if e16 >= e2 {
		t.Fatalf("efficiency should decay with nodes: e2=%.2f e16=%.2f", e2, e16)
	}
	if e16 > 0.9 {
		t.Fatalf("16-node efficiency %.2f suspiciously high for a power-law cut", e16)
	}
	if e2 <= 0 || e2 > 1.2 {
		t.Fatalf("2-node efficiency %.2f out of range", e2)
	}
}

func TestPIUMAScaledTime(t *testing.T) {
	tm, err := PIUMAScaledTime(1.0, 4)
	if err != nil || tm != 0.25 {
		t.Fatalf("PIUMAScaledTime = %v, %v", tm, err)
	}
	if _, err := PIUMAScaledTime(1, 0); err == nil {
		t.Fatal("expected error for zero nodes")
	}
	if _, err := PIUMAScaledTime(-1, 2); err == nil {
		t.Fatal("expected error for negative time")
	}
}

// PIUMA's DGAS scaling beats the cluster at every node count >= 2 on a
// bandwidth-equal footing.
func TestDGASBeatsMPI(t *testing.T) {
	w := productsW()
	const k = 256
	base, err := DefaultCluster(1).SpMMTime(w, k)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{2, 4, 8, 16} {
		cluster, err := DefaultCluster(n).SpMMTime(w, k)
		if err != nil {
			t.Fatal(err)
		}
		dgas, err := PIUMAScaledTime(base, n)
		if err != nil {
			t.Fatal(err)
		}
		if dgas >= cluster {
			t.Fatalf("n=%d: DGAS (%.4g) should beat MPI (%.4g)", n, dgas, cluster)
		}
	}
}
