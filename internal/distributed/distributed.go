// Package distributed models the message-passing CPU cluster that
// Section V-A contrasts with PIUMA's DGAS: scaling SpMM across Xeon
// nodes requires partitioning the graph (vertex or edge cuts) and
// exchanging boundary feature vectors over the interconnect every
// layer, while PIUMA nodes simply address remote memory. The model
// quantifies the "Scalability! But at what COST?" overhead the paper
// cites [24]: cut traffic grows with node count for power-law graphs,
// so distributed-CPU SpMM scales sublinearly while PIUMA's aggregate
// bandwidth scales linearly.
package distributed

import (
	"errors"
	"math"

	"piumagcn/internal/xeon"
)

// Cluster describes a message-passing CPU cluster.
type Cluster struct {
	// Node is the per-node CPU model (a Xeon 8380 2S node).
	Node xeon.Params
	// Nodes is the cluster size.
	Nodes int
	// InterconnectBandwidth is the per-node network bandwidth in
	// bytes/s (e.g. 200 Gb/s HDR InfiniBand ≈ 25 GB/s).
	InterconnectBandwidth float64
	// MessageLatency is the per-exchange software+network latency
	// (MPI overhead per collective step).
	MessageLatency float64
	// CutFraction is the fraction of edges crossing partitions with a
	// good partitioner at 2 nodes; the model grows it with log2(nodes)
	// toward the random-cut limit (power-law graphs partition badly).
	CutFraction float64
}

// DefaultCluster returns a calibrated cluster of n Xeon nodes.
func DefaultCluster(n int) Cluster {
	return Cluster{
		Node:                  xeon.DefaultParams(),
		Nodes:                 n,
		InterconnectBandwidth: 25e9,
		MessageLatency:        20e-6,
		CutFraction:           0.15,
	}
}

// Validate rejects non-physical clusters.
func (c Cluster) Validate() error {
	if err := c.Node.Validate(); err != nil {
		return err
	}
	switch {
	case c.Nodes <= 0:
		return errors.New("distributed: need at least one node")
	case c.InterconnectBandwidth <= 0:
		return errors.New("distributed: interconnect bandwidth must be positive")
	case c.MessageLatency < 0:
		return errors.New("distributed: negative message latency")
	case c.CutFraction < 0 || c.CutFraction > 1:
		return errors.New("distributed: cut fraction out of [0,1]")
	}
	return nil
}

// EdgeCutFraction estimates the fraction of edges whose endpoints land
// on different nodes. One node has no cut; the cut grows with the
// partition count and saturates at the random limit 1 - 1/n.
func (c Cluster) EdgeCutFraction() float64 {
	if c.Nodes <= 1 {
		return 0
	}
	grown := c.CutFraction * math.Log2(float64(c.Nodes))
	limit := 1 - 1/float64(c.Nodes)
	return math.Min(grown, limit)
}

// SpMMTime models one distributed aggregation at embedding width k:
// local compute on 1/n of the edges (at full per-node bandwidth) plus
// the boundary exchange — every cut edge ships one k-wide feature row —
// plus per-layer MPI latency. The cut fraction comes from the model's
// growth curve; use SpMMTimeWithCut to plug in a measured cut from
// internal/partition.
func (c Cluster) SpMMTime(w xeon.Workload, k int) (float64, error) {
	return c.SpMMTimeWithCut(w, k, c.EdgeCutFraction())
}

// SpMMTimeWithCut is SpMMTime with an explicit edge-cut fraction —
// typically measured by partitioning a synthetic stand-in with
// internal/partition rather than assumed.
func (c Cluster) SpMMTimeWithCut(w xeon.Workload, k int, cut float64) (float64, error) {
	if err := c.Validate(); err != nil {
		return 0, err
	}
	if k <= 0 {
		return 0, errors.New("distributed: embedding dimension must be positive")
	}
	if cut < 0 || cut > 1 {
		return 0, errors.New("distributed: cut fraction out of [0,1]")
	}
	threads := c.Node.PhysicalCores()
	local := xeon.Workload{
		V:        w.V / int64(c.Nodes),
		E:        w.E / int64(c.Nodes),
		Locality: w.Locality,
	}
	compute := c.Node.SpMMTime(local, k, threads)
	if c.Nodes == 1 {
		return compute, nil
	}
	exchangeBytes := cut * float64(w.E) * float64(k) * 4 / float64(c.Nodes)
	exchange := exchangeBytes/c.InterconnectBandwidth + c.MessageLatency
	return compute + exchange, nil
}

// PIUMAScaledTime is the DGAS counterpart: n PIUMA nodes multiply the
// aggregate bandwidth with no partitioning or exchange phase (remote
// traffic rides the latency-tolerant network, Key Takeaway 1 of
// Section V-A). baseTime is the single-node SpMM time.
func PIUMAScaledTime(baseTime float64, nodes int) (float64, error) {
	if nodes <= 0 {
		return 0, errors.New("distributed: need at least one node")
	}
	if baseTime < 0 {
		return 0, errors.New("distributed: negative base time")
	}
	return baseTime / float64(nodes), nil
}

// ParallelEfficiency returns speedup(n)/n for the cluster relative to
// one node — the quantity that exposes the MPI scaling tax.
func (c Cluster) ParallelEfficiency(w xeon.Workload, k int) (float64, error) {
	single := DefaultCluster(1)
	single.Node = c.Node
	t1, err := single.SpMMTime(w, k)
	if err != nil {
		return 0, err
	}
	tn, err := c.SpMMTime(w, k)
	if err != nil {
		return 0, err
	}
	if tn <= 0 {
		return 0, errors.New("distributed: non-positive cluster time")
	}
	return t1 / tn / float64(c.Nodes), nil
}
