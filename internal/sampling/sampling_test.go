package sampling

import (
	"math/rand"
	"testing"

	"piumagcn/internal/core"
	"piumagcn/internal/graph"
	"piumagcn/internal/rmat"
	"piumagcn/internal/tensor"
)

func normalizedGraph(t testing.TB, scale, ef int, seed int64) *graph.CSR {
	t.Helper()
	raw, err := rmat.GenerateCSR(rmat.PowerLaw(scale, ef, seed))
	if err != nil {
		t.Fatal(err)
	}
	return graph.NormalizeGCN(raw)
}

func TestUniformSampleBounds(t *testing.T) {
	g := normalizedGraph(t, 8, 8, 1)
	s := Uniform{G: g}
	rng := rand.New(rand.NewSource(2))
	for v := int32(0); v < 50; v++ {
		cols, vals := s.Sample(v, 4, rng)
		if len(cols) > 4 || len(cols) != len(vals) {
			t.Fatalf("vertex %d: sampled %d cols, %d vals", v, len(cols), len(vals))
		}
		deg := int(g.Degree(int(v)))
		want := 4
		if deg < want {
			want = deg
		}
		if len(cols) != want {
			t.Fatalf("vertex %d: sampled %d of degree %d with fanout 4", v, len(cols), deg)
		}
		seen := map[int32]bool{}
		for _, c := range cols {
			if seen[c] {
				t.Fatalf("vertex %d: duplicate neighbour %d (sampling without replacement)", v, c)
			}
			seen[c] = true
		}
	}
}

func TestUniformFullFanout(t *testing.T) {
	g := normalizedGraph(t, 7, 6, 3)
	s := Uniform{G: g}
	rng := rand.New(rand.NewSource(1))
	cols, vals := s.Sample(5, 0, rng)
	wantC, wantV := g.Row(5)
	if len(cols) != len(wantC) {
		t.Fatalf("full fanout returned %d of %d neighbours", len(cols), len(wantC))
	}
	for i := range cols {
		if cols[i] != wantC[i] || vals[i] != wantV[i] {
			t.Fatal("full fanout should return the row verbatim")
		}
	}
}

func TestRandomWalkSampler(t *testing.T) {
	g := normalizedGraph(t, 8, 8, 4)
	s := RandomWalk{G: g, Walks: 30, WalkLength: 3}
	rng := rand.New(rand.NewSource(5))
	cols, vals := s.Sample(1, 6, rng)
	if len(cols) == 0 || len(cols) > 6 {
		t.Fatalf("random walk sampled %d", len(cols))
	}
	sum := 0.0
	for _, v := range vals {
		if v <= 0 {
			t.Fatal("visit weights must be positive")
		}
		sum += v
	}
	if sum > 1.0001 {
		t.Fatalf("weights sum to %v, want <= 1 (normalized frequencies)", sum)
	}
	// Weights are sorted descending (most-visited first).
	for i := 1; i < len(vals); i++ {
		if vals[i] > vals[i-1] {
			t.Fatal("random-walk weights not ranked")
		}
	}
}

func TestRandomWalkIsolatedVertex(t *testing.T) {
	g, _ := graph.FromCOO(&graph.COO{NumVertices: 3, Edges: []graph.Edge{{Src: 1, Dst: 2, Weight: 1}}})
	s := RandomWalk{G: g}
	cols, vals := s.Sample(0, 4, rand.New(rand.NewSource(1)))
	if cols != nil || vals != nil {
		t.Fatal("isolated vertex should sample nothing")
	}
}

func TestBuildBatchValidation(t *testing.T) {
	g := normalizedGraph(t, 6, 4, 6)
	s := Uniform{G: g}
	if _, err := BuildBatch(s, nil, []int{4}, 1); err == nil {
		t.Fatal("expected error for no seeds")
	}
	if _, err := BuildBatch(s, []int32{0}, nil, 1); err == nil {
		t.Fatal("expected error for no layers")
	}
}

func TestBuildBatchDeterministic(t *testing.T) {
	g := normalizedGraph(t, 8, 8, 7)
	s := Uniform{G: g}
	seeds := []int32{1, 5, 9}
	a, err := BuildBatch(s, seeds, []int{4, 4}, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildBatch(s, seeds, []int{4, 4}, 42)
	if err != nil {
		t.Fatal(err)
	}
	sa, sb := ComputeStats(a), ComputeStats(b)
	if sa.SampledEdges != sb.SampledEdges || len(sa.FrontierSizes) != len(sb.FrontierSizes) {
		t.Fatal("batches differ across identical seeds")
	}
}

func TestBatchStats(t *testing.T) {
	g := normalizedGraph(t, 8, 8, 8)
	s := Uniform{G: g}
	b, err := BuildBatch(s, []int32{0, 1}, []int{3, 3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	st := ComputeStats(b)
	if st.Levels != 2 || len(st.FrontierSizes) != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if st.SampledEdges == 0 {
		t.Fatal("no edges sampled")
	}
	// Frontier growth: level 2's frontier should not shrink below the
	// seed count for a connected sample.
	if st.FrontierSizes[0] < 2 {
		t.Fatalf("first frontier %d too small", st.FrontierSizes[0])
	}
}

// The exactness anchor: full-neighbourhood sampling reproduces exact
// GCN inference on the seeds, bit-for-bit in exact arithmetic and to
// 1e-9 in floating point.
func TestFullFanoutMatchesExactInference(t *testing.T) {
	g := normalizedGraph(t, 7, 5, 9)
	n := g.NumVertices
	w := core.Workload{Name: "s", V: int64(n), E: g.NumEdges(), InDim: 6, OutDim: 4, Locality: 0}
	m := core.Model{Layers: 2, Hidden: 5}
	x := tensor.NewRandom(n, w.InDim, 1, 10)
	weights := core.GlorotWeights(m, w, 11)
	full, err := core.InferReference(g, x, weights)
	if err != nil {
		t.Fatal(err)
	}
	seeds := []int32{0, 3, 7, 11, 19}
	batch, err := BuildBatch(Uniform{G: g}, seeds, []int{0, 0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := InferBatch(batch, x, weights)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range seeds {
		grow := got.Row(i)
		frow := full.Row(int(v))
		for j := range frow {
			diff := grow[j] - frow[j]
			if diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("seed %d col %d: sampled %v vs exact %v", v, j, grow[j], frow[j])
			}
		}
	}
}

// Restricted fan-out approximates exact inference: error shrinks as the
// fan-out grows.
func TestFanoutConvergence(t *testing.T) {
	g := normalizedGraph(t, 8, 8, 12)
	n := g.NumVertices
	w := core.Workload{Name: "s", V: int64(n), E: g.NumEdges(), InDim: 6, OutDim: 4, Locality: 0}
	m := core.Model{Layers: 2, Hidden: 5}
	x := tensor.NewRandom(n, w.InDim, 1, 13)
	weights := core.GlorotWeights(m, w, 14)
	full, err := core.InferReference(g, x, weights)
	if err != nil {
		t.Fatal(err)
	}
	seeds := []int32{2, 4, 8, 16}
	errAt := func(fanout int) float64 {
		batch, err := BuildBatch(Uniform{G: g}, seeds, []int{fanout, fanout}, 3)
		if err != nil {
			t.Fatal(err)
		}
		got, err := InferBatch(batch, x, weights)
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for i, v := range seeds {
			grow := got.Row(i)
			frow := full.Row(int(v))
			for j := range frow {
				d := grow[j] - frow[j]
				sum += d * d
			}
		}
		return sum
	}
	small, big := errAt(2), errAt(64)
	if big >= small {
		t.Fatalf("error should shrink with fanout: fanout2=%v fanout64=%v", small, big)
	}
}

func TestInferBatchWeightMismatch(t *testing.T) {
	g := normalizedGraph(t, 6, 4, 15)
	batch, err := BuildBatch(Uniform{G: g}, []int32{0}, []int{2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.NewRandom(g.NumVertices, 4, 1, 1)
	if _, err := InferBatch(batch, x, nil); err == nil {
		t.Fatal("expected error for weight/level mismatch")
	}
}
