// Package sampling implements the neighbourhood-sampling substrate of
// Section VI: sampling-based GNN methods (graphSAGE's uniform fan-out,
// pinSAGE's random-walk importance sampling) build per-batch layered
// subgraphs instead of aggregating over full neighbourhoods. The paper
// points at these as the next PIUMA workloads — random walks are
// latency-bound, and the GPU's papers100M collapse (Figure 4) is caused
// by exactly this CPU-side sampling.
//
// A Batch is a stack of layered bipartite adjacencies: level l maps the
// frontier needed at depth l+1 to the frontier at depth l, with edge
// weights copied from the (already GCN-normalized) global operator, so
// full-fan-out sampling reproduces exact inference on the seeds — a
// property the tests exploit.
package sampling

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"piumagcn/internal/graph"
	"piumagcn/internal/tensor"
)

// Sampler selects up to fanout neighbours of a vertex.
type Sampler interface {
	// Sample returns neighbour column-indices (into the global graph)
	// and their edge weights for vertex v, at most fanout of them.
	// fanout <= 0 means the full neighbourhood.
	Sample(v int32, fanout int, rng *rand.Rand) ([]int32, []float64)
	// Name identifies the strategy.
	Name() string
}

// Uniform is graphSAGE-style uniform neighbour sampling without
// replacement.
type Uniform struct {
	G *graph.CSR
}

// Name implements Sampler.
func (u Uniform) Name() string { return "uniform" }

// Sample implements Sampler.
func (u Uniform) Sample(v int32, fanout int, rng *rand.Rand) ([]int32, []float64) {
	cols, vals := u.G.Row(int(v))
	if fanout <= 0 || len(cols) <= fanout {
		return cols, vals
	}
	// Partial Fisher-Yates over an index permutation.
	idx := make([]int, len(cols))
	for i := range idx {
		idx[i] = i
	}
	outC := make([]int32, fanout)
	outV := make([]float64, fanout)
	for i := 0; i < fanout; i++ {
		j := i + rng.Intn(len(idx)-i)
		idx[i], idx[j] = idx[j], idx[i]
		outC[i] = cols[idx[i]]
		outV[i] = vals[idx[i]]
	}
	return outC, outV
}

// RandomWalk is pinSAGE-style importance sampling: short random walks
// from v estimate visit counts, and the most-visited vertices become
// the sampled neighbourhood (weighted by normalized visit frequency).
type RandomWalk struct {
	G *graph.CSR
	// Walks and WalkLength size the estimator (pinSAGE defaults are
	// on the order of tens of short walks).
	Walks      int
	WalkLength int
}

// Name implements Sampler.
func (r RandomWalk) Name() string { return "random-walk" }

// Sample implements Sampler.
func (r RandomWalk) Sample(v int32, fanout int, rng *rand.Rand) ([]int32, []float64) {
	walks := r.Walks
	if walks <= 0 {
		walks = 20
	}
	length := r.WalkLength
	if length <= 0 {
		length = 3
	}
	visits := make(map[int32]int)
	for w := 0; w < walks; w++ {
		cur := v
		for s := 0; s < length; s++ {
			cols, _ := r.G.Row(int(cur))
			if len(cols) == 0 {
				break
			}
			cur = cols[rng.Intn(len(cols))]
			if cur != v {
				visits[cur]++
			}
		}
	}
	if len(visits) == 0 {
		return nil, nil
	}
	type vc struct {
		v int32
		c int
	}
	ranked := make([]vc, 0, len(visits))
	for vv, c := range visits {
		ranked = append(ranked, vc{vv, c})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].c != ranked[j].c {
			return ranked[i].c > ranked[j].c
		}
		return ranked[i].v < ranked[j].v // deterministic ties
	})
	if fanout > 0 && len(ranked) > fanout {
		ranked = ranked[:fanout]
	}
	total := 0
	for _, e := range ranked {
		total += e.c
	}
	outC := make([]int32, len(ranked))
	outV := make([]float64, len(ranked))
	for i, e := range ranked {
		outC[i] = e.v
		outV[i] = float64(e.c) / float64(total)
	}
	return outC, outV
}

// Layer is one bipartite level of a batch: Block row i aggregates the
// previous frontier's rows into output i; Frontier lists the global
// vertex ids the NEXT level must provide features for.
type Layer struct {
	// Block is a |Dst| x |Src| sparse matrix in CSR form whose column
	// indices address Frontier positions (local ids).
	Block *graph.CSR
	// Frontier are the global vertex ids forming the source side.
	Frontier []int32
}

// Batch is a layered sample rooted at Seeds: applying the blocks from
// the deepest layer upward reproduces (or approximates) L-layer GCN
// aggregation for the seeds.
type Batch struct {
	Seeds  []int32
	Layers []Layer
}

// BuildBatch samples an L-level batch (L = len(fanouts)) for the seeds.
// fanouts[l] bounds the neighbourhood of level l (0 = full). The RNG
// seed makes batches reproducible.
func BuildBatch(s Sampler, seeds []int32, fanouts []int, seed int64) (*Batch, error) {
	if len(seeds) == 0 {
		return nil, errors.New("sampling: no seeds")
	}
	if len(fanouts) == 0 {
		return nil, errors.New("sampling: no layers")
	}
	rng := rand.New(rand.NewSource(seed))
	b := &Batch{Seeds: append([]int32(nil), seeds...)}
	dst := b.Seeds
	for _, fanout := range fanouts {
		layer, nextFrontier, err := sampleLayer(s, dst, fanout, rng)
		if err != nil {
			return nil, err
		}
		b.Layers = append(b.Layers, layer)
		dst = nextFrontier
	}
	return b, nil
}

func sampleLayer(s Sampler, dst []int32, fanout int, rng *rand.Rand) (Layer, []int32, error) {
	local := make(map[int32]int32)
	var frontier []int32
	localID := func(v int32) int32 {
		if id, ok := local[v]; ok {
			return id
		}
		id := int32(len(frontier))
		local[v] = id
		frontier = append(frontier, v)
		return id
	}
	// Self edges keep each dst vertex's own features in the frontier
	// (the +I of the GCN operator is already folded into the global
	// weights; here we only guarantee the id exists if sampled).
	var edges []graph.Edge
	for i, v := range dst {
		cols, vals := s.Sample(v, fanout, rng)
		for j, c := range cols {
			edges = append(edges, graph.Edge{Src: int32(i), Dst: localID(c), Weight: vals[j]})
		}
	}
	// Degenerate guard: a dst row with no sampled neighbours still
	// needs the block to have the right shape.
	if len(frontier) == 0 {
		frontier = append(frontier, dst[0])
	}
	block, err := blockFromEdges(len(dst), len(frontier), edges)
	if err != nil {
		return Layer{}, nil, err
	}
	return Layer{Block: block, Frontier: frontier}, frontier, nil
}

// blockFromEdges builds a rectangular CSR (rows x cols) from COO edges.
// graph.CSR is square by construction, so the block embeds the
// rectangle in a max(rows, cols) square; Rows/Cols record the logical
// shape via the Layer contract (len(dst) x len(frontier)).
func blockFromEdges(rows, cols int, edges []graph.Edge) (*graph.CSR, error) {
	n := rows
	if cols > n {
		n = cols
	}
	return graph.FromCOO(&graph.COO{NumVertices: n, Edges: edges})
}

// InferBatch computes the seeds' embeddings from a batch: features are
// gathered for the deepest frontier, then each block aggregates upward
// with the dense update and ReLU between levels (matching core.Infer's
// layer structure: transform, aggregate, activate).
func InferBatch(b *Batch, features *tensor.Matrix, weights []*tensor.Matrix) (*tensor.Matrix, error) {
	if len(weights) != len(b.Layers) {
		return nil, fmt.Errorf("sampling: %d weight layers for %d batch levels", len(weights), len(b.Layers))
	}
	// Deepest frontier's features.
	deepest := b.Layers[len(b.Layers)-1].Frontier
	h := gatherRows(features, deepest)
	for l := len(b.Layers) - 1; l >= 0; l-- {
		layer := b.Layers[l]
		w := weights[len(weights)-1-l]
		hw, err := tensor.MatMul(h, w)
		if err != nil {
			return nil, fmt.Errorf("sampling: level %d dense: %w", l, err)
		}
		agg, err := aggregateBlock(layer, hw)
		if err != nil {
			return nil, fmt.Errorf("sampling: level %d aggregate: %w", l, err)
		}
		if l > 0 {
			tensor.ReLU(agg)
			// The next (shallower) block's frontier is this level's
			// dst set; gather the rows it needs.
			h = gatherLocal(agg, b.Layers[l-1].Frontier, b.frontierIndex(l))
		} else {
			h = agg
		}
	}
	return h, nil
}

// frontierIndex maps global vertex id -> row in level l's dst output.
// Level l's dst set is level l-1's frontier (or the seeds for l = 0).
func (b *Batch) frontierIndex(l int) map[int32]int {
	var dst []int32
	if l == 0 {
		dst = b.Seeds
	} else {
		dst = b.Layers[l-1].Frontier
	}
	idx := make(map[int32]int, len(dst))
	for i, v := range dst {
		idx[v] = i
	}
	return idx
}

// aggregateBlock computes Block · H over the local ids.
func aggregateBlock(layer Layer, h *tensor.Matrix) (*tensor.Matrix, error) {
	rows := layer.Block.NumVertices // embedded square; logical rows <= this
	out := tensor.New(rows, h.Cols)
	for u := 0; u < rows; u++ {
		cols, vals := layer.Block.Row(u)
		orow := out.Row(u)
		for i, c := range cols {
			if int(c) >= h.Rows {
				return nil, fmt.Errorf("sampling: block references frontier row %d of %d", c, h.Rows)
			}
			w := vals[i]
			hrow := h.Row(int(c))
			for j := range orow {
				orow[j] += w * hrow[j]
			}
		}
	}
	return out, nil
}

// gatherRows copies global feature rows for the frontier.
func gatherRows(features *tensor.Matrix, frontier []int32) *tensor.Matrix {
	out := tensor.New(len(frontier), features.Cols)
	for i, v := range frontier {
		copy(out.Row(i), features.Row(int(v)))
	}
	return out
}

// gatherLocal reorders the aggregated rows (indexed by the dst order of
// the deeper level) into the order the shallower block's frontier
// expects.
func gatherLocal(h *tensor.Matrix, frontier []int32, index map[int32]int) *tensor.Matrix {
	out := tensor.New(len(frontier), h.Cols)
	for i, v := range frontier {
		if row, ok := index[v]; ok && row < h.Rows {
			copy(out.Row(i), h.Row(row))
		}
	}
	return out
}

// Stats summarizes the data volume of a batch — the quantity the GPU
// sampling model charges for (Figure 4's papers path).
type Stats struct {
	Levels        int
	FrontierSizes []int
	SampledEdges  int64
}

// ComputeStats summarizes b.
func ComputeStats(b *Batch) Stats {
	s := Stats{Levels: len(b.Layers)}
	for _, l := range b.Layers {
		s.FrontierSizes = append(s.FrontierSizes, len(l.Frontier))
		s.SampledEdges += l.Block.NumEdges()
	}
	return s
}
