package workload

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"piumagcn/internal/bench"
)

// Tenant is one client population of a scenario: a share of the traffic
// (Weight), an SLO class, and a request-template pool drawn from
// bench.Options sweeps (Templates distinct option seeds over the same
// experiment, so a tenant exercises both the result cache and fresh
// simulations).
type Tenant struct {
	Name  string `json:"name"`
	Class string `json:"class"`
	// Weight is the tenant's share of the request mix, relative to the
	// other tenants' weights (default 1).
	Weight float64 `json:"weight"`
	// SLOMillis overrides the class's default latency target (0 keeps
	// the default; see SLO).
	SLOMillis int64 `json:"slo_ms,omitempty"`
	// Experiment is the bench experiment ID every template submits.
	Experiment string `json:"experiment"`
	// Templates is the size of the option pool: each template uses a
	// distinct derived seed, so a scenario controls exactly how many
	// unique runs (cache misses) a tenant can induce (default 1).
	Templates int `json:"templates,omitempty"`
	// MaxSimEdges sizes each template's simulation (0 = the quick
	// default of 1<<14 edges).
	MaxSimEdges int64 `json:"max_sim_edges,omitempty"`
}

// classSLODefaults are the per-class latency targets used when a tenant
// does not override one.
var classSLODefaults = map[string]time.Duration{
	ClassGold:   250 * time.Millisecond,
	ClassSilver: time.Second,
	ClassBronze: 5 * time.Second,
	ClassBatch:  30 * time.Second,
}

// SLO is the tenant's latency target.
func (t Tenant) SLO() time.Duration {
	if t.SLOMillis > 0 {
		return time.Duration(t.SLOMillis) * time.Millisecond
	}
	return classSLODefaults[t.Class]
}

// Generator modes. Open-loop issues requests at pre-scheduled offsets
// regardless of in-flight count (a slow server piles requests up);
// closed-loop runs a fixed population of workers that each wait for
// their response and think before the next request (a slow server slows
// the workload down — the classic interactive-user model).
const (
	ModeOpen   = "open"
	ModeClosed = "closed"
)

// Scenario is one reproducible load experiment: every request the
// engine will issue is a pure function of this value. Durations are
// millisecond integers in JSON so the encoding is canonical.
type Scenario struct {
	Name string `json:"name,omitempty"`
	// Seed drives every random choice: arrival draws, tenant selection,
	// template selection.
	Seed int64 `json:"seed"`
	// Mode selects the generator: ModeOpen (default) schedules arrivals
	// from the renewal process; ModeClosed runs Concurrency workers with
	// exponential think time (Rate/Process/Shape/Diurnal* must be unset).
	Mode string `json:"mode,omitempty"`
	// Concurrency is the closed-loop worker population (closed mode
	// only; default 1).
	Concurrency int `json:"concurrency,omitempty"`
	// ThinkMS is the closed-loop mean think time between a worker's
	// response and its next request, drawn exponentially (closed mode
	// only; 0 = no think time).
	ThinkMS int64 `json:"think_ms,omitempty"`
	// Rate is the mean offered load in requests per second (open mode).
	Rate float64 `json:"rate,omitempty"`
	// Process selects the inter-arrival distribution: "poisson",
	// "gamma" or "weibull" (empty normalizes to "poisson").
	Process string `json:"process"`
	// Shape is the Gamma/Weibull shape parameter k. Shape 1 reduces
	// both to the exponential; k < 1 is burstier than Poisson, k > 1
	// smoother. Ignored for "poisson".
	Shape float64 `json:"shape,omitempty"`
	// DurationMS bounds the request schedule horizon.
	DurationMS int64 `json:"duration_ms"`
	// MaxRequests additionally caps the number of issued requests
	// (0 = duration-bound only).
	MaxRequests int64 `json:"max_requests,omitempty"`
	// DiurnalAmp in [0, 1) modulates the instantaneous rate as
	// rate·(1 + amp·sin(2πt/period)) — a compressed day/night curve.
	DiurnalAmp float64 `json:"diurnal_amp,omitempty"`
	// DiurnalPeriodMS is the modulation period (required when amp > 0).
	DiurnalPeriodMS int64    `json:"diurnal_period_ms,omitempty"`
	Tenants         []Tenant `json:"tenants"`
}

// Duration is the schedule horizon.
func (s Scenario) Duration() time.Duration {
	return time.Duration(s.DurationMS) * time.Millisecond
}

// Think is the closed-loop mean think time.
func (s Scenario) Think() time.Duration {
	return time.Duration(s.ThinkMS) * time.Millisecond
}

// DiurnalPeriod is the rate-modulation period.
func (s Scenario) DiurnalPeriod() time.Duration {
	return time.Duration(s.DiurnalPeriodMS) * time.Millisecond
}

// quickEdges is the default template simulation size (matches
// bench.QuickOptions).
const quickEdges = 1 << 14

// TemplateOptions is template i of tenant ti: quick options with a
// seed derived from (scenario seed, tenant index, template index), so
// distinct templates are distinct content-addressed runs and identical
// scenarios reproduce identical run IDs.
func (s Scenario) TemplateOptions(ti, i int) bench.Options {
	t := s.Tenants[ti]
	edges := t.MaxSimEdges
	if edges <= 0 {
		edges = quickEdges
	}
	return bench.Options{
		MaxSimEdges: edges,
		Quick:       true,
		Seed:        s.Seed + int64(ti+1)*1_000 + int64(i),
	}
}

// processes is the valid Process vocabulary.
var processes = map[string]bool{"poisson": true, "gamma": true, "weibull": true}

// normalized folds equivalent encodings onto one canonical form, so
// Parse(s.String()) round-trips and JSON artifacts diff cleanly.
func (s Scenario) normalized() Scenario {
	if s.Mode == "" {
		s.Mode = ModeOpen
	}
	if s.Mode == ModeClosed {
		if s.Concurrency == 0 {
			s.Concurrency = 1
		}
	} else {
		if s.Process == "" {
			s.Process = "poisson"
		}
		if s.Process == "poisson" {
			s.Shape = 0
		} else if s.Shape == 0 {
			s.Shape = 1
		}
	}
	if s.DiurnalAmp == 0 {
		s.DiurnalPeriodMS = 0
	}
	ts := append([]Tenant(nil), s.Tenants...)
	for i := range ts {
		if ts[i].Weight == 0 {
			ts[i].Weight = 1
		}
		if ts[i].Templates == 0 {
			ts[i].Templates = 1
		}
	}
	s.Tenants = ts
	return s
}

// Validate rejects scenarios the engine cannot run deterministically.
func (s Scenario) Validate() error {
	s = s.normalized()
	switch s.Mode {
	case ModeOpen:
		switch {
		case s.Concurrency != 0 || s.ThinkMS != 0:
			return fmt.Errorf("workload: concurrency/think only apply to closed mode (set mode=closed)")
		case !processes[s.Process]:
			return fmt.Errorf("workload: unknown process %q (valid: gamma, poisson, weibull)", s.Process)
		// The numeric range checks are written in the affirmative so NaN
		// (which fails every comparison) is rejected too.
		case !(s.Rate > 0 && s.Rate <= 1e6):
			return fmt.Errorf("workload: rate must be in (0, 1e6] requests/s, got %g", s.Rate)
		case s.Process != "poisson" && !(s.Shape > 0 && s.Shape <= 1e3):
			return fmt.Errorf("workload: shape must be in (0, 1e3], got %g", s.Shape)
		case !(s.DiurnalAmp >= 0 && s.DiurnalAmp < 1):
			return fmt.Errorf("workload: diurnal-amp must be in [0, 1), got %g", s.DiurnalAmp)
		case s.DiurnalAmp > 0 && s.DiurnalPeriodMS <= 0:
			return fmt.Errorf("workload: diurnal-period must be positive when diurnal-amp is set")
		}
	case ModeClosed:
		switch {
		case s.Rate != 0 || s.Process != "" || s.Shape != 0 || s.DiurnalAmp != 0:
			return fmt.Errorf("workload: closed mode drives load with concurrency+think; rate/process/shape/diurnal must be unset")
		case s.Concurrency < 1 || s.Concurrency > 4096:
			return fmt.Errorf("workload: concurrency must be in [1, 4096], got %d", s.Concurrency)
		case s.ThinkMS < 0:
			return fmt.Errorf("workload: think must be non-negative, got %dms", s.ThinkMS)
		}
	default:
		return fmt.Errorf("workload: unknown mode %q (valid: %s, %s)", s.Mode, ModeOpen, ModeClosed)
	}
	switch {
	case s.DurationMS <= 0:
		return fmt.Errorf("workload: duration must be positive, got %dms", s.DurationMS)
	case s.MaxRequests < 0:
		return fmt.Errorf("workload: max-requests must be non-negative, got %d", s.MaxRequests)
	case len(s.Tenants) == 0:
		return fmt.Errorf("workload: a scenario needs at least one tenant")
	}
	seen := make(map[string]bool, len(s.Tenants))
	for _, t := range s.Tenants {
		switch {
		case t.Name == "":
			return fmt.Errorf("workload: tenant name must not be empty")
		case strings.ContainsAny(t.Name, ",;= \t\n"):
			return fmt.Errorf("workload: tenant name %q contains spec delimiters", t.Name)
		case seen[t.Name]:
			return fmt.Errorf("workload: duplicate tenant %q", t.Name)
		case !ValidClass(t.Class):
			return fmt.Errorf("workload: tenant %q has unknown class %q (valid: %s)", t.Name, t.Class, strings.Join(Classes, ", "))
		case !(t.Weight > 0 && t.Weight <= 1e6):
			return fmt.Errorf("workload: tenant %q weight must be in (0, 1e6], got %g", t.Name, t.Weight)
		case t.SLOMillis < 0:
			return fmt.Errorf("workload: tenant %q slo must be non-negative", t.Name)
		case t.Experiment == "":
			return fmt.Errorf("workload: tenant %q needs an experiment", t.Name)
		case t.Templates < 0 || t.Templates > 4096:
			return fmt.Errorf("workload: tenant %q templates must be in [1, 4096], got %d", t.Name, t.Templates)
		case t.MaxSimEdges < 0:
			return fmt.Errorf("workload: tenant %q max-sim-edges must be non-negative", t.Name)
		}
		seen[t.Name] = true
	}
	return nil
}

// ValidateExperiments additionally checks every tenant's experiment ID
// against a served registry (engine start does this; Parse does not, so
// specs for remote servers with injected registries still parse).
func (s Scenario) ValidateExperiments(valid []string) error {
	ok := make(map[string]bool, len(valid))
	for _, id := range valid {
		ok[id] = true
	}
	for _, t := range s.Tenants {
		if !ok[t.Experiment] {
			sorted := append([]string(nil), valid...)
			sort.Strings(sorted)
			return fmt.Errorf("workload: tenant %q: unknown experiment %q (valid: %s)", t.Name, t.Experiment, strings.Join(sorted, ", "))
		}
	}
	return nil
}

// String renders the canonical key=value encoding: global keys in fixed
// order, then one ";tenant=..." section per tenant, defaults omitted.
// Parse(s.String()) reproduces s (normalized).
func (s Scenario) String() string {
	s = s.normalized()
	var parts []string
	add := func(key, val string) { parts = append(parts, key+"="+val) }
	if s.Name != "" {
		add("name", s.Name)
	}
	if s.Seed != 0 {
		add("seed", strconv.FormatInt(s.Seed, 10))
	}
	if s.Mode == ModeClosed {
		add("mode", ModeClosed)
		add("concurrency", strconv.Itoa(s.Concurrency))
		if s.ThinkMS != 0 {
			add("think", s.Think().String())
		}
	} else {
		add("rate", strconv.FormatFloat(s.Rate, 'g', -1, 64))
		add("process", s.Process)
		if s.Process != "poisson" {
			add("shape", strconv.FormatFloat(s.Shape, 'g', -1, 64))
		}
	}
	add("duration", s.Duration().String())
	if s.MaxRequests != 0 {
		add("max-requests", strconv.FormatInt(s.MaxRequests, 10))
	}
	if s.DiurnalAmp != 0 {
		add("diurnal-amp", strconv.FormatFloat(s.DiurnalAmp, 'g', -1, 64))
		add("diurnal-period", s.DiurnalPeriod().String())
	}
	sections := []string{strings.Join(parts, ",")}
	for _, t := range s.Tenants {
		tp := []string{"tenant=" + t.Name, "class=" + t.Class}
		if t.Weight != 1 {
			tp = append(tp, "weight="+strconv.FormatFloat(t.Weight, 'g', -1, 64))
		}
		if t.SLOMillis != 0 {
			tp = append(tp, "slo="+(time.Duration(t.SLOMillis)*time.Millisecond).String())
		}
		tp = append(tp, "experiment="+t.Experiment)
		if t.Templates != 1 {
			tp = append(tp, "templates="+strconv.Itoa(t.Templates))
		}
		if t.MaxSimEdges != 0 {
			tp = append(tp, "max-sim-edges="+strconv.FormatInt(t.MaxSimEdges, 10))
		}
		sections = append(sections, strings.Join(tp, ","))
	}
	return strings.Join(sections, ";")
}

// Parse decodes the key=value scenario format: comma-separated global
// keys, then semicolon-separated tenant sections each starting with
// tenant=<name>, e.g.
//
//	rate=40,process=gamma,shape=0.5,duration=10s;tenant=search,class=gold,weight=3,experiment=table1,templates=4;tenant=batch,class=batch,experiment=fig9
//
// The result is validated and normalized so Parse(s.String())
// round-trips.
func Parse(in string) (Scenario, error) {
	var s Scenario
	in = strings.TrimSpace(in)
	if in == "" {
		return Scenario{}, fmt.Errorf("workload: empty scenario spec")
	}
	sections := strings.Split(in, ";")
	if err := parseGlobal(&s, sections[0]); err != nil {
		return Scenario{}, err
	}
	for _, sec := range sections[1:] {
		t, err := parseTenant(sec)
		if err != nil {
			return Scenario{}, err
		}
		s.Tenants = append(s.Tenants, t)
	}
	if err := s.Validate(); err != nil {
		return Scenario{}, err
	}
	return s.normalized(), nil
}

// globalKeys and tenantKeys are the canonical key orders, used in error
// messages.
var (
	globalKeys = []string{"name", "seed", "mode", "concurrency", "think", "rate", "process", "shape", "duration", "max-requests", "diurnal-amp", "diurnal-period"}
	tenantKeys = []string{"tenant", "class", "weight", "slo", "experiment", "templates", "max-sim-edges"}
)

func parseGlobal(s *Scenario, sec string) error {
	return parseKV(sec, func(key, val string) error {
		var err error
		switch key {
		case "name":
			s.Name = val
		case "seed":
			s.Seed, err = strconv.ParseInt(val, 10, 64)
		case "mode":
			s.Mode = val
		case "concurrency":
			s.Concurrency, err = strconv.Atoi(val)
		case "think":
			s.ThinkMS, err = parseDurationMS(val)
		case "rate":
			s.Rate, err = strconv.ParseFloat(val, 64)
		case "process":
			s.Process = val
		case "shape":
			s.Shape, err = strconv.ParseFloat(val, 64)
		case "duration":
			s.DurationMS, err = parseDurationMS(val)
		case "max-requests":
			s.MaxRequests, err = strconv.ParseInt(val, 10, 64)
		case "diurnal-amp":
			s.DiurnalAmp, err = strconv.ParseFloat(val, 64)
		case "diurnal-period":
			s.DiurnalPeriodMS, err = parseDurationMS(val)
		default:
			return fmt.Errorf("workload: unknown key %q (valid: %s)", key, strings.Join(globalKeys, ", "))
		}
		if err != nil {
			return fmt.Errorf("workload: bad value for %s: %v", key, err)
		}
		return nil
	})
}

func parseTenant(sec string) (Tenant, error) {
	var t Tenant
	first := true
	err := parseKV(sec, func(key, val string) error {
		if first && key != "tenant" {
			return fmt.Errorf("workload: tenant section must start with tenant=<name>, got %q", key)
		}
		first = false
		var err error
		switch key {
		case "tenant":
			t.Name = val
		case "class":
			t.Class = val
		case "weight":
			t.Weight, err = strconv.ParseFloat(val, 64)
		case "slo":
			t.SLOMillis, err = parseDurationMS(val)
		case "experiment":
			t.Experiment = val
		case "templates":
			t.Templates, err = strconv.Atoi(val)
		case "max-sim-edges":
			t.MaxSimEdges, err = strconv.ParseInt(val, 10, 64)
		default:
			return fmt.Errorf("workload: unknown tenant key %q (valid: %s)", key, strings.Join(tenantKeys, ", "))
		}
		if err != nil {
			return fmt.Errorf("workload: bad value for %s: %v", key, err)
		}
		return nil
	})
	return t, err
}

func parseKV(sec string, apply func(key, val string) error) error {
	for _, part := range strings.Split(sec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return fmt.Errorf("workload: %q is not key=value", part)
		}
		if err := apply(strings.TrimSpace(key), strings.TrimSpace(val)); err != nil {
			return err
		}
	}
	return nil
}

// parseDurationMS parses a time.ParseDuration string into whole
// milliseconds (the codec's duration unit).
func parseDurationMS(val string) (int64, error) {
	d, err := time.ParseDuration(val)
	if err != nil {
		return 0, err
	}
	if d < 0 {
		return 0, fmt.Errorf("negative duration %v", d)
	}
	if d%time.Millisecond != 0 {
		return 0, fmt.Errorf("duration %v is finer than the 1ms spec resolution", d)
	}
	return int64(d / time.Millisecond), nil
}

// named is the registry of canonical scenarios. They double as the
// fuzz seed corpus and the EXPERIMENTS.md artifacts.
var named = map[string]string{
	// smoke: a short, cheap three-class mix over the analytical Table I
	// experiment — the CI load stage and the quickest way to see the
	// engine work.
	"smoke": "name=smoke,seed=7,rate=20,process=poisson,duration=2s;" +
		"tenant=gold-interactive,class=gold,weight=3,experiment=table1,templates=2;" +
		"tenant=silver-standard,class=silver,weight=2,experiment=table1,templates=2;" +
		"tenant=bronze-scavenger,class=bronze,experiment=table1,templates=2",
	// canonical: the documented multi-tenant reference scenario — three
	// SLO classes, bursty Gamma arrivals (shape 0.5 ⇒ CV² = 2), mixed
	// experiment pools.
	"canonical": "name=canonical,seed=42,rate=40,process=gamma,shape=0.5,duration=10s;" +
		"tenant=search,class=gold,weight=3,experiment=table1,templates=4;" +
		"tenant=analytics,class=silver,weight=2,experiment=fig9,templates=2;" +
		"tenant=archive,class=bronze,experiment=table1,templates=2",
	// closed: the closed-loop reference — a fixed population of four
	// workers, exponential 50ms think time, two-class mix. Throughput is
	// set by worker count and server latency, not a target rate.
	"closed": "name=closed,seed=5,mode=closed,concurrency=4,think=50ms,duration=2s;" +
		"tenant=interactive,class=gold,weight=2,experiment=table1,templates=2;" +
		"tenant=background,class=batch,experiment=table1,templates=2",
	// diurnal: Weibull arrivals under a compressed day/night rate curve
	// (80% modulation over a 2s period).
	"diurnal": "name=diurnal,seed=11,rate=60,process=weibull,shape=0.8,duration=8s," +
		"diurnal-amp=0.8,diurnal-period=2s;" +
		"tenant=day,class=gold,weight=2,experiment=table1,templates=3;" +
		"tenant=night,class=batch,experiment=table1,templates=3",
}

// Named returns a canonical scenario by name.
func Named(name string) (Scenario, error) {
	spec, ok := named[name]
	if !ok {
		return Scenario{}, fmt.Errorf("workload: unknown scenario %q (valid: %s)", name, strings.Join(NamedScenarios(), ", "))
	}
	s, err := Parse(spec)
	if err != nil {
		panic("workload: invalid built-in scenario " + name + ": " + err.Error())
	}
	return s, nil
}

// NamedScenarios lists the canonical scenario names, sorted.
func NamedScenarios() []string {
	out := make([]string, 0, len(named))
	for k := range named {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// NamedSpecs returns the raw canonical spec strings (the fuzz seed
// corpus), keyed by name in sorted order.
func NamedSpecs() []string {
	out := make([]string, 0, len(named))
	for _, k := range NamedScenarios() {
		out = append(out, named[k])
	}
	return out
}
