package workload

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// TestParseStringRoundTrip pins the codec: for every named scenario,
// Parse → String → Parse reproduces the same normalized value, and
// String is stable across the round trip.
func TestParseStringRoundTrip(t *testing.T) {
	for _, spec := range NamedSpecs() {
		s, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		enc := s.String()
		s2, err := Parse(enc)
		if err != nil {
			t.Fatalf("Parse(String()) of %q: %v", enc, err)
		}
		if !reflect.DeepEqual(s, s2) {
			t.Errorf("round trip drifted:\n  first:  %#v\n  second: %#v", s, s2)
		}
		if enc2 := s2.String(); enc != enc2 {
			t.Errorf("String not stable:\n  first:  %s\n  second: %s", enc, enc2)
		}
	}
}

// TestJSONRoundTrip checks the JSON mirror of the spec codec: a parsed
// scenario survives marshal → unmarshal → String unchanged.
func TestJSONRoundTrip(t *testing.T) {
	s, err := Named("canonical")
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var s2 Scenario
	if err := json.Unmarshal(blob, &s2); err != nil {
		t.Fatal(err)
	}
	if got, want := s2.String(), s.String(); got != want {
		t.Errorf("JSON round trip drifted:\n  got:  %s\n  want: %s", got, want)
	}
}

// TestParseDefaults checks normalization: omitted keys land on the
// documented defaults.
func TestParseDefaults(t *testing.T) {
	s, err := Parse("rate=10,duration=1s;tenant=a,class=gold,experiment=table1")
	if err != nil {
		t.Fatal(err)
	}
	if s.Process != "poisson" {
		t.Errorf("default process = %q, want poisson", s.Process)
	}
	tn := s.Tenants[0]
	if tn.Weight != 1 || tn.Templates != 1 {
		t.Errorf("tenant defaults = weight %g templates %d, want 1 and 1", tn.Weight, tn.Templates)
	}
	if got, want := tn.SLO(), classSLODefaults[ClassGold]; got != want {
		t.Errorf("gold SLO default = %v, want %v", got, want)
	}
}

// TestParseErrors walks the validation surface: each bad spec must
// fail with a message naming the offending field.
func TestParseErrors(t *testing.T) {
	cases := []struct {
		spec    string
		wantSub string
	}{
		{"", "empty scenario"},
		{"rate=10,duration=1s", "at least one tenant"},
		{"bogus-key=1,rate=10,duration=1s;tenant=a,class=gold,experiment=table1", "unknown key"},
		{"rate=10,duration=1s;class=gold,tenant=a,experiment=table1", "must start with tenant="},
		{"rate=10,duration=1s;tenant=a,class=platinum,experiment=table1", "unknown class"},
		{"rate=10,duration=1s;tenant=a,class=gold", "needs an experiment"},
		{"rate=0,duration=1s;tenant=a,class=gold,experiment=table1", "rate must be"},
		{"rate=10,duration=0s;tenant=a,class=gold,experiment=table1", "duration must be positive"},
		{"rate=10,duration=1s,process=zipf;tenant=a,class=gold,experiment=table1", "unknown process"},
		{"rate=10,duration=1s,process=gamma,shape=-1;tenant=a,class=gold,experiment=table1", "shape must be"},
		{"rate=10,duration=1s,diurnal-amp=1.5;tenant=a,class=gold,experiment=table1", "diurnal-amp"},
		{"rate=10,duration=1s,diurnal-amp=0.5;tenant=a,class=gold,experiment=table1", "diurnal-period"},
		{"rate=10,duration=1s;tenant=a,class=gold,experiment=table1;tenant=a,class=gold,experiment=table1", "duplicate tenant"},
		{"rate=10,duration=1s;tenant=a,class=gold,experiment=table1,weight=-2", "weight must be"},
		{"rate=10,duration=1s;tenant=a,class=gold,experiment=table1,templates=9999", "templates must be"},
		{"rate=10,duration=1s1x;tenant=a,class=gold,experiment=table1", "bad value for duration"},
		{"rate=10,duration=500us;tenant=a,class=gold,experiment=table1", "1ms spec resolution"},
		{"rate=10,duration=1s,notakv;tenant=a,class=gold,experiment=table1", "not key=value"},
	}
	for _, tc := range cases {
		_, err := Parse(tc.spec)
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want error containing %q", tc.spec, tc.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("Parse(%q) error = %q, want substring %q", tc.spec, err, tc.wantSub)
		}
	}
}

// TestValidateExperiments checks the registry cross-check used at
// engine start.
func TestValidateExperiments(t *testing.T) {
	s, err := Named("smoke")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ValidateExperiments([]string{"table1", "fig9"}); err != nil {
		t.Fatalf("valid registry rejected: %v", err)
	}
	err = s.ValidateExperiments([]string{"fig9"})
	if err == nil || !strings.Contains(err.Error(), `unknown experiment "table1"`) {
		t.Fatalf("missing experiment not reported: %v", err)
	}
}

// TestTemplateOptions checks templates are distinct content-addressed
// requests and reproducible.
func TestTemplateOptions(t *testing.T) {
	s, err := Named("canonical")
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int64]string{}
	for ti := range s.Tenants {
		for i := 0; i < s.Tenants[ti].Templates; i++ {
			o := s.TemplateOptions(ti, i)
			if !o.Quick {
				t.Fatalf("template (%d,%d) is not quick", ti, i)
			}
			if prev, dup := seen[o.Seed]; dup {
				t.Fatalf("template (%d,%d) reuses seed %d of %s", ti, i, o.Seed, prev)
			}
			seen[o.Seed] = s.Tenants[ti].Name
			if o2 := s.TemplateOptions(ti, i); !reflect.DeepEqual(o, o2) {
				t.Fatalf("template (%d,%d) not reproducible", ti, i)
			}
		}
	}
}

// TestNamed checks the registry surface.
func TestNamed(t *testing.T) {
	if _, err := Named("no-such-scenario"); err == nil {
		t.Fatal("unknown name accepted")
	}
	names := NamedScenarios()
	if len(names) < 3 {
		t.Fatalf("want ≥ 3 canonical scenarios, got %v", names)
	}
	for _, n := range names {
		s, err := Named(n)
		if err != nil {
			t.Fatalf("Named(%q): %v", n, err)
		}
		if s.Name != n {
			t.Errorf("scenario %q carries name %q", n, s.Name)
		}
	}
}

func BenchmarkParseScenario(b *testing.B) {
	spec := NamedSpecs()[0]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(spec); err != nil {
			b.Fatal(err)
		}
	}
}
