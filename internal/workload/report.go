package workload

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"

	"piumagcn/internal/textplot"
)

// Outcome classification of a settled request. Backpressure (429/503
// and engine-side sheds) is accounted separately from errors: a server
// refusing load under its admission policy is the system working, a
// 500 or transport failure is it breaking.
const (
	outcomeOK           = "ok"
	outcomeError        = "error"
	outcomeTimeout      = "timeout"
	outcomeBackpressure = "backpressure"
	outcomeUnsettled    = "unsettled"
)

// classify maps one response onto an outcome.
func classify(r TraceResponse) string {
	switch {
	case r.HTTPStatus == 429 || r.HTTPStatus == 503:
		return outcomeBackpressure
	case r.HTTPStatus == 0 && r.Err == shedErr:
		return outcomeBackpressure
	case r.RunStatus == "timeout":
		return outcomeTimeout
	case (r.HTTPStatus == 200 || r.HTTPStatus == 202) && r.RunStatus == "done":
		return outcomeOK
	default:
		return outcomeError
	}
}

// ClassReport aggregates one SLO class. Latency percentiles are
// microsecond integers over successful requests (nearest-rank), so a
// report built from a given trace is byte-deterministic.
type ClassReport struct {
	Class     string `json:"class"`
	Requests  int64  `json:"requests"`
	Completed int64  `json:"completed"`
	Errors    int64  `json:"errors"`
	Timeouts  int64  `json:"timeouts"`
	// Backpressure counts 429/503 responses and engine-side sheds.
	Backpressure int64 `json:"backpressure"`
	// RetriedAfter429 counts 429 rounds requests in this class absorbed
	// by honoring Retry-After before settling (a request retried twice
	// contributes two).
	RetriedAfter429 int64 `json:"retried_after_429,omitempty"`
	// Unsettled counts requests with no recorded response (run aborted).
	Unsettled int64 `json:"unsettled,omitempty"`
	P50US     int64 `json:"p50_us"`
	P95US     int64 `json:"p95_us"`
	P99US     int64 `json:"p99_us"`
	// SLOAttained is the fraction of completed requests that met their
	// tenant's latency target.
	SLOAttained float64 `json:"slo_attained"`
}

// TenantReport aggregates one tenant, with the shares that feed the
// fairness index.
type TenantReport struct {
	Tenant      string  `json:"tenant"`
	Class       string  `json:"class"`
	Weight      float64 `json:"weight"`
	Requests    int64   `json:"requests"`
	Completed   int64   `json:"completed"`
	AchievedRPS float64 `json:"achieved_rps"`
	// FairShare is weight/Σweights; AchievedShare is
	// completed/Σcompleted. A fair system keeps them close.
	FairShare     float64 `json:"fair_share"`
	AchievedShare float64 `json:"achieved_share"`
}

// Report is the structured outcome of one load run.
type Report struct {
	// Scenario is the canonical spec string — the report's provenance.
	Scenario string `json:"scenario"`
	// Replayed marks a report built by replaying a recorded trace.
	Replayed bool `json:"replayed,omitempty"`
	// DurationMS is the schedule horizon; ElapsedMS how long the run
	// actually took (engine clock).
	DurationMS int64 `json:"duration_ms"`
	ElapsedMS  int64 `json:"elapsed_ms"`
	Requests   int64 `json:"requests"`
	Completed  int64 `json:"completed"`
	// Errors excludes backpressure; a clean run has zero.
	Errors       int64 `json:"errors"`
	Timeouts     int64 `json:"timeouts"`
	Backpressure int64 `json:"backpressure"`
	Unsettled    int64 `json:"unsettled,omitempty"`
	// OfferedRPS is the scenario's mean offered rate; AchievedRPS is
	// completed requests over the schedule horizon.
	OfferedRPS  float64 `json:"offered_rps"`
	AchievedRPS float64 `json:"achieved_rps"`
	// Fairness is the Jain index over weight-normalized per-tenant
	// completions: 1.0 is perfectly weighted-fair, 1/n is one tenant
	// taking everything.
	Fairness float64        `json:"fairness"`
	Classes  []ClassReport  `json:"classes"`
	Tenants  []TenantReport `json:"tenants"`
}

// BuildReport reduces a trace (in-memory or decoded from disk) to a
// report. elapsed is the engine-clock run time.
func BuildReport(sc Scenario, reqs []TraceRequest, resps []TraceResponse, elapsed time.Duration) *Report {
	sc = sc.normalized()
	rep := &Report{
		Scenario:   sc.String(),
		DurationMS: sc.DurationMS,
		ElapsedMS:  elapsed.Milliseconds(),
		Requests:   int64(len(reqs)),
		OfferedRPS: sc.Rate,
	}
	byTenant := make(map[string]Tenant, len(sc.Tenants))
	for _, t := range sc.Tenants {
		byTenant[t.Name] = t
	}
	bySeq := make(map[int64]TraceResponse, len(resps))
	for _, r := range resps {
		bySeq[r.Seq] = r
	}

	type classAgg struct {
		ClassReport
		latencies []int64
		sloOK     int64
	}
	classes := make(map[string]*classAgg)
	type tenantAgg struct{ reqs, completed int64 }
	tenants := make(map[string]*tenantAgg)

	for _, req := range reqs {
		ca := classes[req.Class]
		if ca == nil {
			ca = &classAgg{ClassReport: ClassReport{Class: req.Class}}
			classes[req.Class] = ca
		}
		ta := tenants[req.Tenant]
		if ta == nil {
			ta = &tenantAgg{}
			tenants[req.Tenant] = ta
		}
		ca.Requests++
		ta.reqs++
		resp, settled := bySeq[req.Seq]
		if !settled {
			ca.Unsettled++
			rep.Unsettled++
			continue
		}
		ca.RetriedAfter429 += resp.Retried429
		switch classify(resp) {
		case outcomeOK:
			ca.Completed++
			ta.completed++
			rep.Completed++
			ca.latencies = append(ca.latencies, resp.LatencyUS)
			if resp.Latency() <= byTenant[req.Tenant].SLO() {
				ca.sloOK++
			}
		case outcomeTimeout:
			ca.Timeouts++
			rep.Timeouts++
		case outcomeBackpressure:
			ca.Backpressure++
			rep.Backpressure++
		default:
			ca.Errors++
			rep.Errors++
		}
	}

	// Classes render in the fixed vocabulary order; only classes the
	// scenario used appear.
	for _, class := range Classes {
		ca, ok := classes[class]
		if !ok {
			continue
		}
		sort.Slice(ca.latencies, func(i, j int) bool { return ca.latencies[i] < ca.latencies[j] })
		ca.P50US = percentile(ca.latencies, 50)
		ca.P95US = percentile(ca.latencies, 95)
		ca.P99US = percentile(ca.latencies, 99)
		if ca.Completed > 0 {
			ca.SLOAttained = float64(ca.sloOK) / float64(ca.Completed)
		}
		rep.Classes = append(rep.Classes, ca.ClassReport)
	}

	// Tenants render in scenario order.
	var totalWeight float64
	for _, t := range sc.Tenants {
		totalWeight += t.Weight
	}
	horizon := sc.Duration().Seconds()
	var fairness []float64
	for _, t := range sc.Tenants {
		ta := tenants[t.Name]
		if ta == nil {
			ta = &tenantAgg{}
		}
		tr := TenantReport{
			Tenant:    t.Name,
			Class:     t.Class,
			Weight:    t.Weight,
			Requests:  ta.reqs,
			Completed: ta.completed,
			FairShare: t.Weight / totalWeight,
		}
		if horizon > 0 {
			tr.AchievedRPS = float64(ta.completed) / horizon
		}
		if rep.Completed > 0 {
			tr.AchievedShare = float64(ta.completed) / float64(rep.Completed)
		}
		rep.Tenants = append(rep.Tenants, tr)
		fairness = append(fairness, float64(ta.completed)/t.Weight)
	}
	rep.Fairness = JainIndex(fairness)
	if horizon > 0 {
		rep.AchievedRPS = float64(rep.Completed) / horizon
	}
	return rep
}

// percentile is the nearest-rank percentile of sorted microsecond
// latencies (0 for an empty slice).
func percentile(sorted []int64, p int) int64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := (len(sorted)*p + 99) / 100 // ceil(n·p/100)
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// JainIndex is Jain's fairness index (Σx)²/(n·Σx²) over the
// weight-normalized allocations x. It is 1.0 when every tenant gets
// exactly its weighted share, 1/n when one tenant takes everything,
// and 0 for an empty or all-zero allocation.
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// WriteJSON writes the canonical indented JSON encoding.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// fmtUS renders a microsecond latency as milliseconds with fixed
// precision (deterministic formatting).
func fmtUS(us int64) string {
	return strconv.FormatFloat(float64(us)/1000, 'f', 2, 64) + "ms"
}

// Render renders the human-readable report: summary, per-class latency
// table, per-tenant fairness table and an achieved-share bar chart.
func (r *Report) Render() string {
	var b strings.Builder
	title := "workload report"
	if r.Replayed {
		title += " (replayed trace)"
	}
	fmt.Fprintf(&b, "== %s ==\nscenario: %s\n\n", title, r.Scenario)
	fmt.Fprintf(&b, "offered %.4g req/s for %s · achieved %.4g req/s · elapsed %s\n",
		r.OfferedRPS, time.Duration(r.DurationMS)*time.Millisecond,
		r.AchievedRPS, time.Duration(r.ElapsedMS)*time.Millisecond)
	fmt.Fprintf(&b, "requests %d · completed %d · errors %d · timeouts %d · backpressure %d",
		r.Requests, r.Completed, r.Errors, r.Timeouts, r.Backpressure)
	if r.Unsettled > 0 {
		fmt.Fprintf(&b, " · unsettled %d", r.Unsettled)
	}
	fmt.Fprintf(&b, "\njain fairness index: %.4f over %d tenants\n", r.Fairness, len(r.Tenants))

	ct := textplot.Table{Headers: []string{"class", "reqs", "ok", "err", "t/o", "bp", "r429", "p50", "p95", "p99", "slo%"}}
	for _, c := range r.Classes {
		ct.AddRow(c.Class,
			strconv.FormatInt(c.Requests, 10), strconv.FormatInt(c.Completed, 10),
			strconv.FormatInt(c.Errors, 10), strconv.FormatInt(c.Timeouts, 10),
			strconv.FormatInt(c.Backpressure, 10),
			strconv.FormatInt(c.RetriedAfter429, 10),
			fmtUS(c.P50US), fmtUS(c.P95US), fmtUS(c.P99US),
			strconv.FormatFloat(c.SLOAttained*100, 'f', 1, 64))
	}
	b.WriteString("\n-- per-SLO-class latency --\n")
	b.WriteString(ct.String())

	tt := textplot.Table{Headers: []string{"tenant", "class", "weight", "reqs", "ok", "rps", "fair", "got"}}
	labels := make([]string, 0, len(r.Tenants))
	shares := make([]float64, 0, len(r.Tenants))
	for _, t := range r.Tenants {
		tt.AddRow(t.Tenant, t.Class,
			strconv.FormatFloat(t.Weight, 'g', -1, 64),
			strconv.FormatInt(t.Requests, 10), strconv.FormatInt(t.Completed, 10),
			strconv.FormatFloat(t.AchievedRPS, 'f', 2, 64),
			strconv.FormatFloat(t.FairShare, 'f', 3, 64),
			strconv.FormatFloat(t.AchievedShare, 'f', 3, 64))
		labels = append(labels, t.Tenant)
		shares = append(shares, t.AchievedShare)
	}
	b.WriteString("\n-- per-tenant fairness --\n")
	b.WriteString(tt.String())
	b.WriteString("\n-- achieved share --\n")
	b.WriteString(textplot.Bars(labels, shares, 40))
	return b.String()
}
