package workload

import (
	"reflect"
	"testing"
)

// FuzzParseScenario drives the scenario decoder with arbitrary input:
// it must never panic, every accepted scenario must validate, and the
// canonical String encoding must round-trip to the identical normalized
// scenario. The named scenarios seed the corpus alongside hostile
// inputs exercising the delimiter, duration and numeric edges.
func FuzzParseScenario(f *testing.F) {
	for _, seed := range NamedSpecs() {
		f.Add(seed)
	}
	for _, seed := range []string{
		"",
		";",
		";;;",
		"rate=10,duration=1s;tenant=a,class=gold,experiment=table1",
		"rate=10,duration=1s;tenant=a,class=gold,experiment=table1,slo=750ms,weight=2.5,templates=3,max-sim-edges=65536",
		"name=x,seed=-1,rate=1e6,process=weibull,shape=1000,duration=1ms,max-requests=1",
		"rate=10,duration=1s,diurnal-amp=0.999,diurnal-period=1ms;tenant=a,class=batch,experiment=x",
		"rate=nan,duration=1s;tenant=a,class=gold,experiment=table1",
		"rate=+Inf,duration=1s;tenant=a,class=gold,experiment=table1",
		"duration=9223372036854ms,rate=1;tenant=a,class=gold,experiment=table1",
		"rate=10,duration=1s;tenant==,class=gold,experiment=table1",
		"rate=10,duration=1s;tenant=a,tenant=b,class=gold,experiment=table1",
		" rate = 10 ,, duration=1s ; tenant=a , class=gold , experiment=table1 ",
		"rate=10,duration=500us;tenant=a,class=gold,experiment=table1",
		"shape=0.1,process=gamma,rate=10,duration=1s;tenant=a,class=silver,experiment=fig9",
		"=",
		"key=value",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, in string) {
		s, err := Parse(in)
		if err != nil {
			return
		}
		if verr := s.Validate(); verr != nil {
			t.Fatalf("Parse(%q) accepted invalid scenario %+v: %v", in, s, verr)
		}
		enc := s.String()
		round, err := Parse(enc)
		if err != nil {
			t.Fatalf("Parse(%q).String() = %q does not re-parse: %v", in, enc, err)
		}
		if !reflect.DeepEqual(round, s) {
			t.Fatalf("round trip of %q via %q:\n%+v\n!=\n%+v", in, enc, round, s)
		}
		if enc2 := round.String(); enc2 != enc {
			t.Fatalf("String of %q not canonical: %q vs %q", in, enc, enc2)
		}
	})
}
