package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Arrivals generates the deterministic request schedule of a scenario:
// a renewal process with exponential (Poisson), Gamma or Weibull
// inter-arrivals, optionally modulated by a diurnal rate curve.
//
// The diurnal curve is applied by time rescaling, which is exact for
// any renewal process (thinning is only exact for Poisson): arrivals
// are first drawn in "operational time" at unit mean rate, then each
// operational instant s is mapped to wall time t by inverting the
// cumulative rate function
//
//	Λ(t) = rate·t + rate·amp·(period/2π)·(1 − cos(2πt/period))
//
// whose derivative λ(t) = rate·(1 + amp·sin(2πt/period)) is the
// instantaneous offered load. With amp = 0 this degenerates to
// t = s/rate. Λ is strictly increasing (amp < 1 keeps λ > 0), so the
// inverse is well-defined; Newton iteration with a bisection guard
// converges to sub-nanosecond precision in a handful of steps.
//
// All draws come from one seeded *rand.Rand: identical scenarios
// produce identical schedules, byte for byte, across runs and replays.
type Arrivals struct {
	s      Scenario
	rng    *rand.Rand
	sample func() float64 // unit-mean inter-arrival draw

	opTime float64 // accumulated operational time (expected count)
	issued int64
	// weibullScale normalizes the Weibull draw to unit mean.
	weibullScale float64
}

// NewArrivals builds the schedule generator for a validated scenario.
// The rng must be dedicated to this generator (draw order is part of
// the determinism contract).
func NewArrivals(s Scenario, rng *rand.Rand) (*Arrivals, error) {
	s = s.normalized()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	a := &Arrivals{s: s, rng: rng}
	switch s.Process {
	case "poisson":
		a.sample = rng.ExpFloat64
	case "gamma":
		// Gamma(k, θ) with θ = 1/k has mean 1 and CV² = 1/k.
		k := s.Shape
		a.sample = func() float64 { return gammaSample(rng, k) / k }
	case "weibull":
		// Weibull(k, λ) has mean λ·Γ(1+1/k); scale to unit mean.
		k := s.Shape
		a.weibullScale = 1 / math.Gamma(1+1/k)
		a.sample = func() float64 { return weibullSample(rng, k, a.weibullScale) }
	default:
		return nil, fmt.Errorf("workload: unknown process %q", s.Process)
	}
	return a, nil
}

// Next returns the next request's offset from the start of the run,
// or false once the schedule is exhausted (duration horizon reached or
// max-requests issued).
func (a *Arrivals) Next() (time.Duration, bool) {
	if a.s.MaxRequests > 0 && a.issued >= a.s.MaxRequests {
		return 0, false
	}
	a.opTime += a.sample()
	t := a.invertRate(a.opTime)
	offset := time.Duration(t * float64(time.Second))
	if offset >= a.s.Duration() {
		return 0, false
	}
	a.issued++
	return offset, true
}

// invertRate solves Λ(t) = s for t (both in seconds).
func (a *Arrivals) invertRate(s float64) float64 {
	rate, amp := a.s.Rate, a.s.DiurnalAmp
	if amp == 0 {
		return s / rate
	}
	period := a.s.DiurnalPeriod().Seconds()
	omega := 2 * math.Pi / period
	cum := func(t float64) float64 {
		return rate*t + rate*amp/omega*(1-math.Cos(omega*t))
	}
	deriv := func(t float64) float64 {
		return rate * (1 + amp*math.Sin(omega*t))
	}
	// Bracket: λ ∈ [rate(1−amp), rate(1+amp)] bounds the inverse.
	lo := s / (rate * (1 + amp))
	hi := s / (rate * (1 - amp))
	t := s / rate
	for i := 0; i < 64; i++ {
		f := cum(t) - s
		if math.Abs(f) < 1e-12 {
			break
		}
		if f > 0 {
			hi = t
		} else {
			lo = t
		}
		t -= f / deriv(t)
		if t <= lo || t >= hi {
			t = (lo + hi) / 2 // Newton escaped the bracket; bisect
		}
	}
	return t
}

// gammaSample draws Gamma(shape k, scale 1) via Marsaglia–Tsang
// (squeeze + acceptance), with the Stuart boost U^(1/k)·Gamma(k+1) for
// k < 1. Mean k, variance k.
func gammaSample(rng *rand.Rand, k float64) float64 {
	if k < 1 {
		// Boost: Gamma(k) = Gamma(k+1) · U^(1/k).
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return gammaSample(rng, k+1) * math.Pow(u, 1/k)
	}
	d := k - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		var x, v float64
		for {
			x = rng.NormFloat64()
			v = 1 + c*x
			if v > 0 {
				break
			}
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// weibullSample draws Weibull(shape k, scale) by inverse transform:
// scale·(−ln U)^(1/k).
func weibullSample(rng *rand.Rand, k, scale float64) float64 {
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	return scale * math.Pow(-math.Log(u), 1/k)
}
