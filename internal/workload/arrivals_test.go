package workload

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// drawOffsets runs the generator to exhaustion and returns all offsets
// in seconds.
func drawOffsets(t *testing.T, s Scenario) []float64 {
	t.Helper()
	a, err := NewArrivals(s, rand.New(rand.NewSource(s.Seed)))
	if err != nil {
		t.Fatalf("NewArrivals: %v", err)
	}
	var out []float64
	for {
		off, ok := a.Next()
		if !ok {
			return out
		}
		out = append(out, off.Seconds())
	}
}

// interArrivalStats returns the sample mean and variance of the
// inter-arrival gaps.
func interArrivalStats(offsets []float64) (mean, variance float64) {
	n := 0
	prev := 0.0
	var sum, sumSq float64
	for _, o := range offsets {
		d := o - prev
		prev = o
		sum += d
		sumSq += d * d
		n++
	}
	mean = sum / float64(n)
	variance = sumSq/float64(n) - mean*mean
	return mean, variance
}

// oneTenant is a minimal valid tenant list for arrival-only tests.
var oneTenant = []Tenant{{Name: "t", Class: ClassGold, Experiment: "table1"}}

// TestArrivalStatistics checks each process's fixed-seed sample moments
// against the analytic values: mean 1/rate for all, and squared
// coefficient of variation 1 (Poisson), 1/k (Gamma) and
// Γ(1+2/k)/Γ(1+1/k)² − 1 (Weibull). ~20k samples put the sample mean
// within a percent and CV² within a few percent of truth.
func TestArrivalStatistics(t *testing.T) {
	const rate = 500.0
	base := Scenario{Seed: 1234, Rate: rate, DurationMS: 40_000, Tenants: oneTenant}
	cases := []struct {
		name    string
		process string
		shape   float64
		wantCV2 float64
	}{
		{"poisson", "poisson", 0, 1},
		{"gamma-bursty", "gamma", 0.5, 2},     // CV² = 1/k
		{"gamma-smooth", "gamma", 4, 0.25},    // CV² = 1/k
		{"weibull-bursty", "weibull", 0.8, 0}, // filled below
		{"weibull-smooth", "weibull", 2, 0},   // filled below
	}
	for i := range cases {
		if cases[i].process == "weibull" {
			k := cases[i].shape
			m := math.Gamma(1 + 1/k)
			cases[i].wantCV2 = math.Gamma(1+2/k)/(m*m) - 1
		}
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := base
			s.Process = tc.process
			s.Shape = tc.shape
			offsets := drawOffsets(t, s)
			if len(offsets) < 15_000 {
				t.Fatalf("only %d samples; want ≥ 15000", len(offsets))
			}
			mean, variance := interArrivalStats(offsets)
			if got, want := mean, 1/rate; math.Abs(got-want)/want > 0.02 {
				t.Errorf("mean inter-arrival = %.6f, want %.6f ± 2%%", got, want)
			}
			cv2 := variance / (mean * mean)
			if math.Abs(cv2-tc.wantCV2)/tc.wantCV2 > 0.08 {
				t.Errorf("CV² = %.4f, want %.4f ± 8%%", cv2, tc.wantCV2)
			}
		})
	}
}

// TestDiurnalModulation checks the time-rescaled rate curve: with
// λ(t) = rate·(1 + amp·sin(2πt/period)), the first half of each period
// must carry rate·(period/2) + rate·amp·period/π arrivals on average
// and the second half the mirror image.
func TestDiurnalModulation(t *testing.T) {
	const (
		rate   = 400.0
		amp    = 0.8
		period = 1.0 // seconds
	)
	s := Scenario{
		Seed: 99, Rate: rate, Process: "poisson",
		DurationMS: 20_000, DiurnalAmp: amp, DiurnalPeriodMS: 1000,
		Tenants: oneTenant,
	}
	offsets := drawOffsets(t, s)
	var firstHalf, secondHalf int
	for _, o := range offsets {
		if math.Mod(o, period) < period/2 {
			firstHalf++
		} else {
			secondHalf++
		}
	}
	// Per period: ∫₀^{T/2} λ = rate·T/2 + rate·amp·T/π over the rising
	// half; the falling half gets rate·T/2 − rate·amp·T/π.
	periods := s.Duration().Seconds() / period
	wantFirst := (rate*period/2 + rate*amp*period/math.Pi) * periods
	wantSecond := (rate*period/2 - rate*amp*period/math.Pi) * periods
	if got := float64(firstHalf); math.Abs(got-wantFirst)/wantFirst > 0.05 {
		t.Errorf("rising-half arrivals = %d, want %.0f ± 5%%", firstHalf, wantFirst)
	}
	if got := float64(secondHalf); math.Abs(got-wantSecond)/wantSecond > 0.05 {
		t.Errorf("falling-half arrivals = %d, want %.0f ± 5%%", secondHalf, wantSecond)
	}
}

// TestArrivalsDeterministic pins that equal seeds yield equal schedules
// and different seeds do not.
func TestArrivalsDeterministic(t *testing.T) {
	s := Scenario{Seed: 7, Rate: 100, Process: "gamma", Shape: 0.5, DurationMS: 2000, Tenants: oneTenant}
	a := drawOffsets(t, s)
	b := drawOffsets(t, s)
	if len(a) == 0 {
		t.Fatal("no arrivals generated")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("offset %d differs across identical seeds: %v vs %v", i, a[i], b[i])
		}
	}
	s.Seed = 8
	c := drawOffsets(t, s)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestArrivalsBounds checks the duration horizon and max-requests cap.
func TestArrivalsBounds(t *testing.T) {
	s := Scenario{Seed: 3, Rate: 1000, Process: "poisson", DurationMS: 500, Tenants: oneTenant}
	for _, o := range drawOffsets(t, s) {
		if d := time.Duration(o * float64(time.Second)); d >= s.Duration() {
			t.Fatalf("offset %v beyond horizon %v", d, s.Duration())
		}
	}
	s.MaxRequests = 17
	if got := len(drawOffsets(t, s)); got != 17 {
		t.Fatalf("max-requests=17 issued %d", got)
	}
}

// TestGammaSampleMoments checks the raw Gamma sampler against its
// analytic mean k and variance k, covering both the k ≥ 1 path and the
// boosted k < 1 path.
func TestGammaSampleMoments(t *testing.T) {
	for _, k := range []float64{0.5, 1, 2.5, 9} {
		rng := rand.New(rand.NewSource(42))
		const n = 60_000
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			x := gammaSample(rng, k)
			sum += x
			sumSq += x * x
		}
		mean := sum / n
		variance := sumSq/n - mean*mean
		if math.Abs(mean-k)/k > 0.03 {
			t.Errorf("k=%g: mean = %.4f, want %.4f ± 3%%", k, mean, k)
		}
		if math.Abs(variance-k)/k > 0.08 {
			t.Errorf("k=%g: variance = %.4f, want %.4f ± 8%%", k, variance, k)
		}
	}
}

func BenchmarkArrivalsPoisson(b *testing.B) {
	s := Scenario{Seed: 1, Rate: 1000, Process: "poisson", DurationMS: 1 << 30, Tenants: oneTenant}
	a, err := NewArrivals(s, rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.Next()
	}
}

func BenchmarkArrivalsDiurnalGamma(b *testing.B) {
	s := Scenario{
		Seed: 1, Rate: 1000, Process: "gamma", Shape: 0.5, DurationMS: 1 << 30,
		DiurnalAmp: 0.8, DiurnalPeriodMS: 1000, Tenants: oneTenant,
	}
	a, err := NewArrivals(s, rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.Next()
	}
}
