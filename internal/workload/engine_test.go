package workload

import (
	"bytes"
	"context"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"piumagcn/internal/bench"
	"piumagcn/internal/serve"
)

// virtualClock advances instantly to each requested offset, so engine
// tests run in microseconds of wall time and — paired with a
// deterministic client — produce bit-identical runs.
type virtualClock struct {
	mu  sync.Mutex
	now time.Duration
}

func (c *virtualClock) Start() {}

func (c *virtualClock) Since() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *virtualClock) SleepUntil(ctx context.Context, offset time.Duration) bool {
	c.mu.Lock()
	if offset > c.now {
		c.now = offset
	}
	c.mu.Unlock()
	return ctx.Err() == nil
}

// fakeClient settles every request successfully with a latency that is
// a pure function of the sequence number.
type fakeClient struct{}

func (fakeClient) Do(_ context.Context, req Request) Response {
	return Response{
		HTTPStatus: 200,
		RunStatus:  "done",
		RunID:      req.Experiment + "-run",
		Latency:    time.Duration(req.Seq%7+1) * time.Millisecond,
	}
}

// runDeterministic runs sc against the fake client under a virtual
// clock, recording into a buffer, and returns (trace bytes, report).
func runDeterministic(t *testing.T, sc Scenario) ([]byte, *Report) {
	t.Helper()
	var buf bytes.Buffer
	tw, err := NewTraceWriter(&buf, sc)
	if err != nil {
		t.Fatal(err)
	}
	e := &Engine{
		Scenario:    sc,
		Client:      fakeClient{},
		Clock:       &virtualClock{},
		Trace:       tw,
		MaxInFlight: -1, // unbounded: shed decisions would race the fake client
	}
	rep, err := e.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), rep
}

func reportJSON(t *testing.T, rep *Report) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := rep.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// TestRunDeterministic is the core acceptance property: the same
// seeded scenario run twice produces byte-identical traces and
// byte-identical reports.
func TestRunDeterministic(t *testing.T) {
	sc, err := Named("canonical")
	if err != nil {
		t.Fatal(err)
	}
	// Shrink the horizon so the test stays fast; determinism is
	// independent of scale.
	sc.DurationMS = 1000
	trace1, rep1 := runDeterministic(t, sc)
	trace2, rep2 := runDeterministic(t, sc)
	if !bytes.Equal(trace1, trace2) {
		t.Fatalf("traces differ across identical runs (%d vs %d bytes)", len(trace1), len(trace2))
	}
	j1, j2 := reportJSON(t, rep1), reportJSON(t, rep2)
	if !bytes.Equal(j1, j2) {
		t.Fatalf("reports differ across identical runs:\n%s\nvs\n%s", j1, j2)
	}
	if rep1.Requests == 0 || rep1.Completed != rep1.Requests {
		t.Fatalf("fake-client run should complete everything: %+v", rep1)
	}
}

// TestReplayByteIdentical records a run, replays the decoded trace
// with the same deterministic client, and requires the replayed trace
// to be byte-identical to the original — requests by construction
// (verbatim re-framing), responses because the client is a pure
// function of the schedule.
func TestReplayByteIdentical(t *testing.T) {
	sc, err := Named("diurnal")
	if err != nil {
		t.Fatal(err)
	}
	sc.DurationMS = 1000
	original, rep := runDeterministic(t, sc)
	tr, err := ReadTrace(bytes.NewReader(original))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := tr.Scenario.String(), sc.normalized().String(); got != want {
		t.Fatalf("decoded scenario drifted:\n  got:  %s\n  want: %s", got, want)
	}
	var buf bytes.Buffer
	tw, err := NewTraceWriter(&buf, tr.Scenario)
	if err != nil {
		t.Fatal(err)
	}
	e := &Engine{Client: fakeClient{}, Clock: &virtualClock{}, Trace: tw, MaxInFlight: -1}
	rep2, err := e.Replay(context.Background(), tr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(original, buf.Bytes()) {
		t.Fatalf("replayed trace differs from original (%d vs %d bytes)", len(original), len(buf.Bytes()))
	}
	if !rep2.Replayed {
		t.Error("replay report not marked Replayed")
	}
	// Everything but the Replayed marker must match the original report.
	rep2.Replayed = false
	if got, want := reportJSON(t, rep2), reportJSON(t, rep); !bytes.Equal(got, want) {
		t.Fatalf("replay report differs:\n%s\nvs\n%s", got, want)
	}
}

// instantExperiment is a served experiment that completes immediately.
func instantExperiment(id string) bench.Experiment {
	return bench.Experiment{
		ID:    id,
		Title: "instant " + id,
		Run: func(ctx context.Context, o bench.Options) (*bench.Report, error) {
			r := &bench.Report{ID: id, Title: "instant"}
			r.Add("section", "body")
			return r, nil
		},
	}
}

// TestRecordReplayAgainstServe exercises the full HTTP path: record a
// run against a live httptest serve instance, replay the trace against
// the same server, and require the request streams of the two traces to
// be byte-identical (responses carry measured wall-clock latencies and
// may differ).
func TestRecordReplayAgainstServe(t *testing.T) {
	srv := serve.New(serve.Config{Experiments: []bench.Experiment{instantExperiment("table1")}})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	sc, err := Parse("name=ht,seed=5,rate=200,duration=250ms;" +
		"tenant=a,class=gold,weight=2,experiment=table1,templates=2;" +
		"tenant=b,class=silver,experiment=table1,templates=2;" +
		"tenant=c,class=batch,experiment=table1")
	if err != nil {
		t.Fatal(err)
	}
	client := &HTTPClient{C: serve.NewClient(ts.URL, nil), Timeout: 10 * time.Second}

	record := func() *Trace {
		var buf bytes.Buffer
		tw, err := NewTraceWriter(&buf, sc)
		if err != nil {
			t.Fatal(err)
		}
		e := &Engine{Scenario: sc, Client: client, Trace: tw}
		rep, err := e.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if rep.Requests == 0 {
			t.Fatal("no requests issued")
		}
		if rep.Errors != 0 {
			t.Fatalf("live run reported %d errors:\n%s", rep.Errors, rep.Render())
		}
		tr, err := ReadTrace(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}

	tr := record()
	var buf2 bytes.Buffer
	tw2, err := NewTraceWriter(&buf2, tr.Scenario)
	if err != nil {
		t.Fatal(err)
	}
	e2 := &Engine{Client: client, Trace: tw2}
	rep2, err := e2.Replay(context.Background(), tr)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Errors != 0 {
		t.Fatalf("replay reported %d errors:\n%s", rep2.Errors, rep2.Render())
	}
	tr2, err := ReadTrace(bytes.NewReader(buf2.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.RawRequests) != len(tr2.RawRequests) {
		t.Fatalf("request counts differ: %d vs %d", len(tr.RawRequests), len(tr2.RawRequests))
	}
	for i := range tr.RawRequests {
		if !bytes.Equal(tr.RawRequests[i], tr2.RawRequests[i]) {
			t.Fatalf("request frame %d differs:\n%s\nvs\n%s", i, tr.RawRequests[i], tr2.RawRequests[i])
		}
	}
	// The engine submitted runs with the SLO class attached; the server
	// must have accounted them under the bounded class families.
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	exposition, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`piumaserve_class_requests_total{class="gold"}`,
		`piumaserve_class_requests_total{class="silver"}`,
		`piumaserve_class_requests_total{class="batch"}`,
	} {
		if !strings.Contains(string(exposition), want) {
			t.Errorf("server metrics missing %s", want)
		}
	}
}

// TestShedOverCap checks the open-loop guarantee: requests over the
// in-flight cap settle immediately as backpressure instead of queueing
// in the generator.
func TestShedOverCap(t *testing.T) {
	release := make(chan struct{})
	blocked := blockingClient{release: release}
	sc, err := Parse("seed=1,rate=1000,duration=1s,max-requests=4;tenant=a,class=gold,experiment=table1")
	if err != nil {
		t.Fatal(err)
	}
	e := &Engine{Scenario: sc, Client: blocked, Clock: &virtualClock{}, MaxInFlight: 1}
	done := make(chan *Report, 1)
	go func() {
		rep, err := e.Run(context.Background())
		if err != nil {
			t.Error(err)
		}
		done <- rep
	}()
	// The first request holds the only slot; the remaining three must
	// shed, after which releasing the client lets the run finish.
	time.Sleep(50 * time.Millisecond)
	close(release)
	rep := <-done
	if rep == nil {
		t.Fatal("run failed")
	}
	if rep.Backpressure != 3 || rep.Completed != 1 {
		t.Fatalf("want 1 completed + 3 shed, got %+v", rep)
	}
}

// blockingClient blocks every request until release is closed.
type blockingClient struct{ release <-chan struct{} }

func (c blockingClient) Do(ctx context.Context, req Request) Response {
	select {
	case <-c.release:
		return Response{HTTPStatus: 200, RunStatus: "done", Latency: time.Millisecond}
	case <-ctx.Done():
		return Response{Err: ctx.Err().Error()}
	}
}

// countingClient tracks the peak number of concurrent Do calls.
type countingClient struct {
	cur, peak atomic.Int64
}

func (c *countingClient) Do(ctx context.Context, req Request) Response {
	n := c.cur.Add(1)
	defer c.cur.Add(-1)
	for {
		p := c.peak.Load()
		if n <= p || c.peak.CompareAndSwap(p, n) {
			break
		}
	}
	time.Sleep(2 * time.Millisecond)
	return Response{HTTPStatus: 200, RunStatus: "done", Latency: time.Millisecond}
}

// TestClosedLoopConcurrencyBound checks the defining closed-loop
// property: in-flight requests never exceed the worker population, and
// MaxRequests caps the run.
func TestClosedLoopConcurrencyBound(t *testing.T) {
	sc, err := Parse("seed=3,mode=closed,concurrency=3,duration=30s,max-requests=9;" +
		"tenant=a,class=gold,experiment=table1,templates=2")
	if err != nil {
		t.Fatal(err)
	}
	client := &countingClient{}
	e := &Engine{Scenario: sc, Client: client}
	rep, err := e.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 9 || rep.Completed != 9 {
		t.Fatalf("want 9 completed requests, got %+v", rep)
	}
	if peak := client.peak.Load(); peak > 3 {
		t.Fatalf("closed loop exceeded its population: peak %d > concurrency 3", peak)
	}
}

// TestClosedLoopDeterministic: with one worker, a deterministic client
// and a virtual clock, a closed run is as reproducible as an open one —
// byte-identical traces and reports.
func TestClosedLoopDeterministic(t *testing.T) {
	sc, err := Parse("seed=9,mode=closed,concurrency=1,think=10ms,duration=10s,max-requests=25;" +
		"tenant=a,class=gold,weight=2,experiment=table1,templates=3;" +
		"tenant=b,class=batch,experiment=table1,templates=2")
	if err != nil {
		t.Fatal(err)
	}
	trace1, rep1 := runDeterministic(t, sc)
	trace2, rep2 := runDeterministic(t, sc)
	if !bytes.Equal(trace1, trace2) {
		t.Fatalf("closed traces differ across identical runs (%d vs %d bytes)", len(trace1), len(trace2))
	}
	if got, want := reportJSON(t, rep1), reportJSON(t, rep2); !bytes.Equal(got, want) {
		t.Fatalf("closed reports differ:\n%s\nvs\n%s", got, want)
	}
	if rep1.Requests != 25 || rep1.Completed != 25 {
		t.Fatalf("want 25 completed requests, got %+v", rep1)
	}
}

// TestClosedTraceReplaysOpenLoop: a recorded closed-loop trace replays
// through the open-loop core (actual issue offsets become the
// schedule), reproducing the request stream byte for byte.
func TestClosedTraceReplaysOpenLoop(t *testing.T) {
	sc, err := Parse("seed=9,mode=closed,concurrency=1,think=10ms,duration=10s,max-requests=10;" +
		"tenant=a,class=gold,experiment=table1,templates=2")
	if err != nil {
		t.Fatal(err)
	}
	original, _ := runDeterministic(t, sc)
	tr, err := ReadTrace(bytes.NewReader(original))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tw, err := NewTraceWriter(&buf, tr.Scenario)
	if err != nil {
		t.Fatal(err)
	}
	e := &Engine{Client: fakeClient{}, Clock: &virtualClock{}, Trace: tw, MaxInFlight: -1}
	rep, err := e.Replay(context.Background(), tr)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Replayed || rep.Requests != 10 {
		t.Fatalf("replay: %+v", rep)
	}
	tr2, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for i := range tr.RawRequests {
		if !bytes.Equal(tr.RawRequests[i], tr2.RawRequests[i]) {
			t.Fatalf("request frame %d differs:\n%s\nvs\n%s", i, tr.RawRequests[i], tr2.RawRequests[i])
		}
	}
}

// TestEngineMetrics checks the client-side metric families render with
// bounded labels.
func TestEngineMetrics(t *testing.T) {
	sc, err := Named("smoke")
	if err != nil {
		t.Fatal(err)
	}
	sc.DurationMS = 300
	m := NewMetrics()
	e := &Engine{Scenario: sc, Client: fakeClient{}, Clock: &virtualClock{}, MaxInFlight: -1, Metrics: m}
	rep, err := e.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	m.Render(&b)
	out := b.String()
	for _, want := range []string{
		`piumaload_requests_total{class="gold"}`,
		`piumaload_outcomes_total{outcome="ok"}`,
		"piumaload_request_seconds_bucket",
		"piumaload_in_flight 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q:\n%s", want, out)
		}
	}
	if rep.Completed == 0 {
		t.Fatal("nothing completed")
	}
}
