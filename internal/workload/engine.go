package workload

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"

	"piumagcn/internal/bench"
	"piumagcn/internal/serve"
)

// Request is one scheduled request as handed to the client.
type Request struct {
	Seq        int64
	Offset     time.Duration // scheduled issue offset from run start
	Tenant     string
	Class      string
	Experiment string
	Options    bench.Options
	SLO        time.Duration
}

// Response is a client's outcome for one request. A zero Latency tells
// the engine to use its own clock measurement; deterministic fake
// clients set it explicitly.
type Response struct {
	HTTPStatus int
	RunStatus  string
	RunID      string
	Err        string
	Latency    time.Duration
	// Retried429 counts how many 429 responses this request absorbed by
	// honoring Retry-After before the final outcome above.
	Retried429 int64
}

// Client executes one request. Implementations must be safe for
// concurrent use: the engine is open-loop and dispatches every request
// at its scheduled time regardless of how many are still in flight.
type Client interface {
	Do(ctx context.Context, req Request) Response
}

// Clock paces the engine. The default is the wall clock; tests inject a
// virtual clock so determinism tests do not depend on scheduler timing.
type Clock interface {
	// Start marks the run epoch.
	Start()
	// Since is the elapsed time from the epoch.
	Since() time.Duration
	// SleepUntil blocks until the given offset from the epoch (false if
	// the context was canceled first). Offsets in the past return
	// immediately.
	SleepUntil(ctx context.Context, offset time.Duration) bool
}

// wallClock is the real-time Clock.
type wallClock struct{ epoch time.Time }

func (c *wallClock) Start()               { c.epoch = time.Now() }
func (c *wallClock) Since() time.Duration { return time.Since(c.epoch) }
func (c *wallClock) SleepUntil(ctx context.Context, offset time.Duration) bool {
	d := offset - c.Since()
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// shedErr marks a synthetic response for a request the engine refused
// to dispatch because MaxInFlight was reached. Sheds count as
// backpressure (the generator protecting itself is the same signal as
// the server protecting itself).
const shedErr = "workload: shed (max in-flight reached)"

// defaultMaxInFlight bounds concurrent dispatches; an open-loop
// generator against a stalled server would otherwise grow goroutines
// without bound.
const defaultMaxInFlight = 512

// Engine runs one scenario against a Client: it derives the full
// request schedule from the scenario seed, issues each request at its
// scheduled offset, records the trace (when a TraceWriter is attached)
// and reduces the outcomes to a Report.
type Engine struct {
	Scenario Scenario
	Client   Client
	// Clock paces issue times (nil = wall clock).
	Clock Clock
	// Trace, when non-nil, records the run.
	Trace *TraceWriter
	// MaxInFlight bounds concurrent dispatches (0 = 512; negative =
	// unbounded). Requests over the cap settle as sheds.
	MaxInFlight int
	// Metrics, when non-nil, tracks live client-side counters.
	Metrics *Metrics
}

// schedule derives the full deterministic request schedule up front.
// Two independent generators keep the draw streams stable: the arrival
// rng is consumed only by inter-arrival draws, the pick rng only by
// tenant/template selection, so adding a tenant does not perturb the
// arrival times.
func (e *Engine) schedule() ([]Request, error) {
	sc := e.Scenario.normalized()
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	arrivals, err := NewArrivals(sc, rand.New(rand.NewSource(sc.Seed)))
	if err != nil {
		return nil, err
	}
	pick := rand.New(rand.NewSource(sc.Seed + 1))
	var cumWeight []float64
	total := 0.0
	for _, t := range sc.Tenants {
		total += t.Weight
		cumWeight = append(cumWeight, total)
	}
	var reqs []Request
	for {
		offset, ok := arrivals.Next()
		if !ok {
			break
		}
		// Tenant pick: inverse CDF over the cumulative weights.
		x := pick.Float64() * total
		ti := sort.SearchFloat64s(cumWeight, x)
		if ti >= len(sc.Tenants) {
			ti = len(sc.Tenants) - 1
		}
		t := sc.Tenants[ti]
		reqs = append(reqs, Request{
			Seq:        int64(len(reqs)),
			Offset:     offset,
			Tenant:     t.Name,
			Class:      t.Class,
			Experiment: t.Experiment,
			Options:    sc.TemplateOptions(ti, pick.Intn(t.Templates)),
			SLO:        t.SLO(),
		})
	}
	return reqs, nil
}

// Run executes the scenario and returns its report. Canceling the
// context stops issuing new requests; already-dispatched requests run
// to completion under their own context handling.
func (e *Engine) Run(ctx context.Context) (*Report, error) {
	sc := e.Scenario.normalized()
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if sc.Mode == ModeClosed {
		return e.runClosed(ctx, sc)
	}
	reqs, err := e.schedule()
	if err != nil {
		return nil, err
	}
	return e.run(ctx, reqs, nil, false)
}

// runClosed is the closed-loop driver: Concurrency workers each issue a
// request, wait for its response, think (exponential with mean Think),
// and repeat until the duration horizon or MaxRequests. Unlike the
// open-loop core there is no pre-derived schedule — issue times depend
// on server latency, which is the point of a closed loop — but every
// random choice (tenant, template, think draw) still comes from
// per-worker seeded generators, and the trace records actual issue
// offsets so a closed trace replays as an open-loop schedule.
func (e *Engine) runClosed(ctx context.Context, sc Scenario) (*Report, error) {
	if e.Client == nil {
		return nil, fmt.Errorf("workload: engine needs a client")
	}
	clock := e.Clock
	if clock == nil {
		clock = &wallClock{}
	}

	var cumWeight []float64
	total := 0.0
	for _, t := range sc.Tenants {
		total += t.Weight
		cumWeight = append(cumWeight, total)
	}

	var (
		mu        sync.Mutex
		traceReqs []TraceRequest
		responses []TraceResponse
		settled   []bool
		firstErr  error
	)
	// issue assigns the next sequence number, stamps the actual issue
	// offset and writes the request frame — all under one lock, so seq
	// order and trace frame order agree exactly as in the open loop.
	issue := func(ti, tmpl int) (Request, bool) {
		mu.Lock()
		defer mu.Unlock()
		if firstErr != nil {
			return Request{}, false
		}
		seq := int64(len(traceReqs))
		if sc.MaxRequests > 0 && seq >= sc.MaxRequests {
			return Request{}, false
		}
		t := sc.Tenants[ti]
		req := Request{
			Seq:        seq,
			Offset:     clock.Since(),
			Tenant:     t.Name,
			Class:      t.Class,
			Experiment: t.Experiment,
			Options:    sc.TemplateOptions(ti, tmpl),
			SLO:        t.SLO(),
		}
		tr := TraceRequest{
			Kind:       "req",
			Seq:        seq,
			OffsetUS:   req.Offset.Microseconds(),
			Tenant:     t.Name,
			Class:      t.Class,
			Experiment: t.Experiment,
			Options:    req.Options,
		}
		if e.Trace != nil {
			if _, err := e.Trace.WriteRequest(tr); err != nil {
				firstErr = err
				return Request{}, false
			}
		}
		traceReqs = append(traceReqs, tr)
		responses = append(responses, TraceResponse{})
		settled = append(settled, false)
		return req, true
	}
	record := func(seq int64, resp TraceResponse) {
		mu.Lock()
		responses[seq] = resp
		settled[seq] = true
		class := traceReqs[seq].Class
		mu.Unlock()
		if e.Metrics != nil {
			e.Metrics.observe(class, classify(resp), resp.Latency())
		}
	}

	clock.Start()
	var wg sync.WaitGroup
	for w := 0; w < sc.Concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Offset each worker's stream far from the open-loop arrival
			// and pick streams so the draw sequences never overlap.
			rng := rand.New(rand.NewSource(sc.Seed + int64(w+1)*1_000_003))
			for {
				if ctx.Err() != nil || clock.Since() >= sc.Duration() {
					return
				}
				x := rng.Float64() * total
				ti := sort.SearchFloat64s(cumWeight, x)
				if ti >= len(sc.Tenants) {
					ti = len(sc.Tenants) - 1
				}
				tmpl := rng.Intn(sc.Tenants[ti].Templates)
				req, ok := issue(ti, tmpl)
				if !ok {
					return
				}
				if e.Metrics != nil {
					e.Metrics.inFlight.Add(1)
				}
				start := clock.Since()
				resp := e.Client.Do(ctx, req)
				if resp.Latency == 0 {
					resp.Latency = clock.Since() - start
				}
				if e.Metrics != nil {
					e.Metrics.inFlight.Add(-1)
				}
				record(req.Seq, TraceResponse{
					Seq:        req.Seq,
					HTTPStatus: resp.HTTPStatus,
					RunStatus:  resp.RunStatus,
					RunID:      resp.RunID,
					LatencyUS:  resp.Latency.Microseconds(),
					Err:        resp.Err,
					Retried429: resp.Retried429,
				})
				if sc.ThinkMS > 0 {
					d := time.Duration(rng.ExpFloat64() * float64(sc.Think()))
					if !clock.SleepUntil(ctx, clock.Since()+d) {
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := clock.Since()
	if firstErr != nil {
		return nil, firstErr
	}

	var outResps []TraceResponse
	for seq := range traceReqs {
		if !settled[seq] {
			continue
		}
		if e.Trace != nil {
			if err := e.Trace.WriteResponse(responses[seq]); err != nil {
				return nil, err
			}
		}
		outResps = append(outResps, responses[seq])
	}
	rep := BuildReport(sc, traceReqs, outResps, elapsed)
	return rep, nil
}

// Replay re-executes a recorded trace's request schedule against the
// client. The recorded request payload bytes are re-framed verbatim, so
// a replayed trace's request stream is byte-identical to its source.
func (e *Engine) Replay(ctx context.Context, tr *Trace) (*Report, error) {
	if len(tr.Requests) != len(tr.RawRequests) {
		return nil, fmt.Errorf("workload: trace requests (%d) and raw payloads (%d) out of sync", len(tr.Requests), len(tr.RawRequests))
	}
	e.Scenario = tr.Scenario
	reqs := make([]Request, len(tr.Requests))
	byTenant := make(map[string]Tenant, len(tr.Scenario.Tenants))
	for _, t := range tr.Scenario.normalized().Tenants {
		byTenant[t.Name] = t
	}
	for i, r := range tr.Requests {
		reqs[i] = Request{
			Seq:        r.Seq,
			Offset:     r.Offset(),
			Tenant:     r.Tenant,
			Class:      r.Class,
			Experiment: r.Experiment,
			Options:    r.Options,
			SLO:        byTenant[r.Tenant].SLO(),
		}
	}
	return e.run(ctx, reqs, tr.RawRequests, true)
}

// run is the shared open-loop core. raw, when non-nil, holds recorded
// request payloads to re-frame verbatim (replay); otherwise request
// frames are freshly encoded.
func (e *Engine) run(ctx context.Context, reqs []Request, raw [][]byte, replayed bool) (*Report, error) {
	if e.Client == nil {
		return nil, fmt.Errorf("workload: engine needs a client")
	}
	clock := e.Clock
	if clock == nil {
		clock = &wallClock{}
	}
	maxInFlight := e.MaxInFlight
	if maxInFlight == 0 {
		maxInFlight = defaultMaxInFlight
	}

	traceReqs := make([]TraceRequest, len(reqs))
	for i, r := range reqs {
		traceReqs[i] = TraceRequest{
			Seq:        r.Seq,
			OffsetUS:   r.Offset.Microseconds(),
			Tenant:     r.Tenant,
			Class:      r.Class,
			Experiment: r.Experiment,
			Options:    r.Options,
		}
	}

	responses := make([]TraceResponse, len(reqs))
	settled := make([]bool, len(reqs))
	var mu sync.Mutex
	var wg sync.WaitGroup
	var inFlight chan struct{}
	if maxInFlight > 0 {
		inFlight = make(chan struct{}, maxInFlight)
	}

	record := func(seq int64, resp TraceResponse) {
		mu.Lock()
		responses[seq] = resp
		settled[seq] = true
		mu.Unlock()
		if e.Metrics != nil {
			e.Metrics.observe(reqs[seq].Class, classify(resp), resp.Latency())
		}
	}

	clock.Start()
	issued := 0
	for i := range reqs {
		req := reqs[i]
		if !clock.SleepUntil(ctx, req.Offset) {
			break // canceled: remaining requests stay unsettled
		}
		// The request frame is written at issue time, in seq order, from
		// this single scheduler goroutine.
		if e.Trace != nil {
			var err error
			if raw != nil {
				err = e.Trace.WriteRequestRaw(raw[i])
			} else {
				traceReqs[i].Kind = "req"
				_, err = e.Trace.WriteRequest(traceReqs[i])
			}
			if err != nil {
				return nil, err
			}
		}
		issued++
		// Open loop: never wait for capacity. Over the cap the request
		// settles immediately as a shed.
		if inFlight != nil {
			select {
			case inFlight <- struct{}{}:
			default:
				record(req.Seq, TraceResponse{Seq: req.Seq, Err: shedErr})
				continue
			}
		}
		if e.Metrics != nil {
			e.Metrics.inFlight.Add(1)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			start := clock.Since()
			resp := e.Client.Do(ctx, req)
			if resp.Latency == 0 {
				resp.Latency = clock.Since() - start
			}
			if inFlight != nil {
				<-inFlight
			}
			if e.Metrics != nil {
				e.Metrics.inFlight.Add(-1)
			}
			record(req.Seq, TraceResponse{
				Seq:        req.Seq,
				HTTPStatus: resp.HTTPStatus,
				RunStatus:  resp.RunStatus,
				RunID:      resp.RunID,
				LatencyUS:  resp.Latency.Microseconds(),
				Err:        resp.Err,
				Retried429: resp.Retried429,
			})
		}()
	}
	wg.Wait()
	elapsed := clock.Since()

	// Response frames are written after the run, in seq order, so the
	// trace layout is a pure function of the outcomes (not of goroutine
	// completion order).
	var outResps []TraceResponse
	for seq := 0; seq < issued; seq++ {
		if !settled[seq] {
			continue
		}
		if e.Trace != nil {
			if err := e.Trace.WriteResponse(responses[seq]); err != nil {
				return nil, err
			}
		}
		outResps = append(outResps, responses[seq])
	}

	rep := BuildReport(e.Scenario, traceReqs[:issued], outResps, elapsed)
	rep.Replayed = replayed
	return rep, nil
}

// HTTPClient adapts serve.Client to the engine: each request becomes a
// blocking POST /v1/runs?wait=true carrying the tenant's SLO class.
type HTTPClient struct {
	C *serve.Client
	// Timeout bounds one request (0 = no per-request deadline). The
	// deadline also rides the X-Piuma-Deadline-Ms header end to end, so
	// the serving tier stops burning simulation time the moment the
	// generator gives up.
	Timeout time.Duration
	// Retry429 is how many times a 429 (admission control, queue full)
	// is retried after honoring the response's Retry-After hint — the
	// generator treating backpressure as a schedule, not a failure
	// (0 = default 2; negative disables).
	Retry429 int
}

func (h *HTTPClient) retry429() int {
	switch {
	case h.Retry429 < 0:
		return 0
	case h.Retry429 == 0:
		return 2
	default:
		return h.Retry429
	}
}

// Do submits the request and classifies the outcome, absorbing up to
// retry429 rounds of 429 backpressure along the way.
func (h *HTTPClient) Do(ctx context.Context, req Request) Response {
	if h.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, h.Timeout)
		defer cancel()
	}
	var retried int64
	for attempt := 0; ; attempt++ {
		res, status, retryAfter, err := h.C.SubmitAndWaitInfo(ctx, req.Experiment, req.Options, req.Class)
		if err != nil {
			return Response{Err: err.Error(), Retried429: retried}
		}
		if status == http.StatusTooManyRequests && attempt < h.retry429() {
			// Honor the server's own pacing hint, plus deterministic
			// per-(seq,attempt) jitter so a herd of rejected requests
			// does not come back in lockstep.
			d := retryAfter
			if d <= 0 {
				d = 100 * time.Millisecond
			}
			d += jitter429(req.Seq, attempt)
			t := time.NewTimer(d)
			select {
			case <-ctx.Done():
				t.Stop()
				return Response{HTTPStatus: status, Retried429: retried}
			case <-t.C:
			}
			retried++
			continue
		}
		return Response{
			HTTPStatus: status,
			RunStatus:  string(res.Status),
			RunID:      res.ID,
			Err:        res.Error,
			Retried429: retried,
		}
	}
}

// jitter429 derives the 429-retry jitter in [0, 50ms) from the request
// sequence and attempt via FNV-1a, so retry timing is a pure function
// of the schedule rather than of shared rng state.
func jitter429(seq int64, attempt int) time.Duration {
	h := uint64(1469598103934665603)
	for _, v := range []uint64{uint64(seq), uint64(attempt)} {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= 1099511628211
		}
	}
	return time.Duration(h % uint64(50*time.Millisecond))
}
