// Package workload is the serving tier's traffic engine: an open-loop
// load generator that drives internal/serve (live over HTTP or as an
// in-process handler) with seeded, deterministic arrival processes and
// multi-tenant client mixes, records every issued request and response
// to a replayable trace, and reduces the outcome to a structured report
// — per-SLO-class latency percentiles, achieved vs offered throughput,
// error/backpressure accounting and a Jain fairness index across
// tenants.
//
// The moving parts:
//
//	Scenario  — pure data: arrival process, rate, diurnal curve, tenant
//	            mix. Encodes as key=value (command lines) and JSON
//	            (artifacts), mirroring internal/faults.Spec.
//	Arrivals  — seeded renewal process (Poisson, Gamma, Weibull
//	            inter-arrivals) pushed through the inverse cumulative
//	            rate of the diurnal curve: identical seeds produce
//	            identical request schedules, always.
//	Engine    — the open-loop driver: requests are issued at their
//	            scheduled offsets regardless of how many are still in
//	            flight (the defining property of an open-loop generator:
//	            a slow server does not slow the workload down, it piles
//	            up), each tagged with its tenant's SLO class.
//	Trace     — record/replay on internal/store's length-prefixed
//	            CRC32C framing. Replaying a trace re-issues the recorded
//	            request payloads byte for byte.
//	Report    — the run reduced to numbers: p50/p95/p99 per SLO class,
//	            SLO attainment, throughput, fairness.
package workload

// SLO classes are a fixed vocabulary, not free-form strings: metric
// label cardinality stays bounded (piumalint's metriclabels analyzer
// enforces this at every obs With site) and reports have a stable row
// order. Each class carries a default latency target; tenants may
// override it per scenario.
const (
	// ClassGold is interactive traffic with the tightest latency target.
	ClassGold = "gold"
	// ClassSilver is standard interactive traffic.
	ClassSilver = "silver"
	// ClassBronze is latency-tolerant traffic.
	ClassBronze = "bronze"
	// ClassBatch is throughput-oriented background traffic.
	ClassBatch = "batch"
)

// Classes enumerates the SLO classes in report order.
var Classes = []string{ClassGold, ClassSilver, ClassBronze, ClassBatch}

// ValidClass reports whether c is in the fixed vocabulary.
func ValidClass(c string) bool {
	for _, k := range Classes {
		if c == k {
			return true
		}
	}
	return false
}
