package workload

import (
	"io"
	"time"

	"piumagcn/internal/obs"
)

// latencyBounds are the client-side histogram bucket upper bounds in
// seconds (matching the serving tier's buckets so the two sides of a
// load test compare directly).
var latencyBounds = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 1, 5, 25, 100, 500}

// Metrics tracks a running engine's live client-side counters,
// rendered in the same Prometheus text format as the server so one
// tool chain reads both.
type Metrics struct {
	reg      *obs.Registry
	requests *obs.CounterVec
	outcomes *obs.CounterVec
	latency  *obs.Histogram
	inFlight *obs.Gauge
}

// NewMetrics returns a fresh metric set.
func NewMetrics() *Metrics {
	reg := obs.NewRegistry()
	return &Metrics{
		reg: reg,
		requests: reg.CounterVec("piumaload_requests_total",
			"Requests issued, by SLO class.", "class"),
		outcomes: reg.CounterVec("piumaload_outcomes_total",
			"Settled requests, by outcome.", "outcome"),
		latency: reg.Histogram("piumaload_request_seconds",
			"Client-observed request latency.", latencyBounds),
		inFlight: reg.Gauge("piumaload_in_flight",
			"Requests currently awaiting a response."),
	}
}

// observe records one settled request. Classes and outcomes are
// normalized onto fixed vocabularies via constant-armed switches, so
// the label sets stay bounded no matter what a scenario contains.
func (m *Metrics) observe(class, outcome string, latency time.Duration) {
	switch class {
	case ClassGold:
		m.classInc(ClassGold)
	case ClassSilver:
		m.classInc(ClassSilver)
	case ClassBronze:
		m.classInc(ClassBronze)
	case ClassBatch:
		m.classInc(ClassBatch)
	default:
		m.classInc("other")
	}
	switch outcome {
	case outcomeOK:
		m.outcomeInc(outcomeOK)
	case outcomeTimeout:
		m.outcomeInc(outcomeTimeout)
	case outcomeBackpressure:
		m.outcomeInc(outcomeBackpressure)
	default:
		m.outcomeInc(outcomeError)
	}
	m.latency.Observe(latency.Seconds())
}

func (m *Metrics) classInc(class string)     { m.requests.With(class).Inc() }
func (m *Metrics) outcomeInc(outcome string) { m.outcomes.With(outcome).Inc() }

// Render writes the Prometheus text exposition.
func (m *Metrics) Render(w io.Writer) { m.reg.Render(w) }
