package workload

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestJainIndex(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"all-zero", []float64{0, 0, 0}, 0},
		{"equal", []float64{5, 5, 5, 5}, 1},
		{"one-hot", []float64{9, 0, 0}, 1.0 / 3},
		{"two-to-one", []float64{2, 1}, 0.9},
	}
	for _, tc := range cases {
		if got := JainIndex(tc.xs); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("%s: JainIndex = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestPercentileNearestRank(t *testing.T) {
	sorted := []int64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	cases := []struct {
		p    int
		want int64
	}{{50, 50}, {95, 100}, {99, 100}, {100, 100}, {1, 10}}
	for _, tc := range cases {
		if got := percentile(sorted, tc.p); got != tc.want {
			t.Errorf("p%d = %d, want %d", tc.p, got, tc.want)
		}
	}
	if got := percentile(nil, 50); got != 0 {
		t.Errorf("p50 of empty = %d, want 0", got)
	}
	if got := percentile([]int64{42}, 99); got != 42 {
		t.Errorf("p99 of singleton = %d, want 42", got)
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		name string
		resp TraceResponse
		want string
	}{
		{"done-200", TraceResponse{HTTPStatus: 200, RunStatus: "done"}, outcomeOK},
		{"done-202", TraceResponse{HTTPStatus: 202, RunStatus: "done"}, outcomeOK},
		{"queue-full", TraceResponse{HTTPStatus: 429}, outcomeBackpressure},
		{"draining", TraceResponse{HTTPStatus: 503}, outcomeBackpressure},
		{"shed", TraceResponse{Err: shedErr}, outcomeBackpressure},
		{"timeout", TraceResponse{HTTPStatus: 200, RunStatus: "timeout"}, outcomeTimeout},
		{"failed-run", TraceResponse{HTTPStatus: 200, RunStatus: "failed"}, outcomeError},
		{"transport", TraceResponse{Err: "connection refused"}, outcomeError},
		{"server-500", TraceResponse{HTTPStatus: 500}, outcomeError},
	}
	for _, tc := range cases {
		if got := classify(tc.resp); got != tc.want {
			t.Errorf("%s: classify = %q, want %q", tc.name, got, tc.want)
		}
	}
}

// reportFixture builds a small three-tenant report by hand: gold gets 4
// completions (one over SLO), silver 2, bronze 1 plus a timeout, an
// error and an unsettled request.
func reportFixture(t *testing.T) *Report {
	t.Helper()
	sc, err := Parse("name=fix,seed=1,rate=10,duration=1s;" +
		"tenant=g,class=gold,weight=2,experiment=table1;" +
		"tenant=s,class=silver,experiment=table1;" +
		"tenant=b,class=bronze,experiment=table1")
	if err != nil {
		t.Fatal(err)
	}
	var reqs []TraceRequest
	var resps []TraceResponse
	add := func(tenant, class string, resp TraceResponse, settled bool) {
		seq := int64(len(reqs))
		reqs = append(reqs, TraceRequest{Seq: seq, Tenant: tenant, Class: class})
		if settled {
			resp.Seq = seq
			resps = append(resps, resp)
		}
	}
	ok := func(latency time.Duration) TraceResponse {
		return TraceResponse{HTTPStatus: 200, RunStatus: "done", LatencyUS: latency.Microseconds()}
	}
	add("g", ClassGold, ok(10*time.Millisecond), true)
	add("g", ClassGold, ok(20*time.Millisecond), true)
	add("g", ClassGold, ok(30*time.Millisecond), true)
	add("g", ClassGold, ok(400*time.Millisecond), true) // misses the 250ms gold SLO
	add("s", ClassSilver, ok(50*time.Millisecond), true)
	add("s", ClassSilver, ok(60*time.Millisecond), true)
	add("b", ClassBronze, ok(70*time.Millisecond), true)
	add("b", ClassBronze, TraceResponse{HTTPStatus: 200, RunStatus: "timeout"}, true)
	add("b", ClassBronze, TraceResponse{HTTPStatus: 500}, true)
	add("b", ClassBronze, TraceResponse{}, false) // unsettled
	return BuildReport(sc, reqs, resps, 900*time.Millisecond)
}

func TestBuildReport(t *testing.T) {
	rep := reportFixture(t)
	if rep.Requests != 10 || rep.Completed != 7 || rep.Timeouts != 1 || rep.Errors != 1 || rep.Unsettled != 1 {
		t.Fatalf("totals wrong: %+v", rep)
	}
	if len(rep.Classes) != 3 {
		t.Fatalf("want 3 class rows, got %d", len(rep.Classes))
	}
	gold := rep.Classes[0]
	if gold.Class != ClassGold || gold.Completed != 4 {
		t.Fatalf("gold row wrong: %+v", gold)
	}
	// Nearest-rank over [10, 20, 30, 400]ms: p50 = 20ms, p95 = p99 = 400ms.
	if gold.P50US != 20_000 || gold.P95US != 400_000 || gold.P99US != 400_000 {
		t.Fatalf("gold percentiles wrong: %+v", gold)
	}
	if gold.SLOAttained != 0.75 {
		t.Fatalf("gold SLO attainment = %v, want 0.75", gold.SLOAttained)
	}
	// Fairness over completed/weight = [2, 2, 1]: J = 25/(3·9) ≈ 0.9259.
	if want := 25.0 / 27.0; math.Abs(rep.Fairness-want) > 1e-12 {
		t.Fatalf("fairness = %v, want %v", rep.Fairness, want)
	}
	// Offered 10 req/s; achieved 7 completions over the 1s horizon.
	if rep.AchievedRPS != 7 {
		t.Fatalf("achieved rps = %v, want 7", rep.AchievedRPS)
	}
	if rep.ElapsedMS != 900 {
		t.Fatalf("elapsed = %v, want 900", rep.ElapsedMS)
	}
}

func TestReportRender(t *testing.T) {
	out := reportFixture(t).Render()
	for _, want := range []string{
		"per-SLO-class latency",
		"per-tenant fairness",
		"achieved share",
		"jain fairness index: 0.9259 over 3 tenants",
		"gold", "silver", "bronze",
		"400.00ms",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
