package workload

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"piumagcn/internal/bench"
	"piumagcn/internal/gate"
	"piumagcn/internal/serve"
)

// TestRetryAfter429ThroughGateAdmission drives the HTTPClient against a
// real gate whose admission bucket holds exactly one token per second:
// the second submission is rejected with 429 + Retry-After, the client
// honors the hint (plus seeded jitter), eventually lands the run, and
// the retry rounds surface in the per-class report column.
func TestRetryAfter429ThroughGateAdmission(t *testing.T) {
	srv := serve.New(serve.Config{
		Experiments: []bench.Experiment{{
			ID:    "table1",
			Title: "instant",
			Run: func(ctx context.Context, o bench.Options) (*bench.Report, error) {
				r := &bench.Report{ID: "table1", Title: "instant"}
				r.Add("section", "body")
				return r, nil
			},
		}},
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})

	g, err := gate.New(gate.Config{
		Backends:      []string{ts.URL},
		ProbeInterval: -1,
		Rate:          1,
		Burst:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Shutdown)
	gts := httptest.NewServer(g.Handler())
	t.Cleanup(gts.Close)

	hc := &HTTPClient{C: serve.NewClient(gts.URL, nil), Timeout: 20 * time.Second, Retry429: 3}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	opts := func(seed int64) bench.Options {
		o := bench.QuickOptions()
		o.Seed = seed
		return o
	}
	first := hc.Do(ctx, Request{Seq: 0, Tenant: "t", Class: "gold", Experiment: "table1", Options: opts(1)})
	if first.HTTPStatus != http.StatusOK {
		t.Fatalf("first request: %+v", first)
	}
	// The bucket is empty now; this one must absorb at least one 429
	// round before the refill lets it through.
	second := hc.Do(ctx, Request{Seq: 1, Tenant: "t", Class: "gold", Experiment: "table1", Options: opts(2)})
	if second.HTTPStatus != http.StatusOK {
		t.Fatalf("second request should retry through the 429: %+v", second)
	}
	if second.Retried429 < 1 {
		t.Fatalf("second request retried %d times, want >= 1", second.Retried429)
	}

	// The retry rounds flow into the per-class report column.
	reqs := []TraceRequest{
		{Seq: 0, Tenant: "t", Class: "gold", Experiment: "table1"},
		{Seq: 1, Tenant: "t", Class: "gold", Experiment: "table1"},
	}
	resps := []TraceResponse{
		{Seq: 0, HTTPStatus: first.HTTPStatus, RunStatus: first.RunStatus, RunID: first.RunID, LatencyUS: 1000},
		{Seq: 1, HTTPStatus: second.HTTPStatus, RunStatus: second.RunStatus, RunID: second.RunID, LatencyUS: 1000, Retried429: second.Retried429},
	}
	sc := Scenario{DurationMS: 2000, Rate: 1, Tenants: []Tenant{{Name: "t", Class: "gold", Experiment: "table1"}}}
	rep := BuildReport(sc, reqs, resps, 2*time.Second)
	var gold *ClassReport
	for i := range rep.Classes {
		if rep.Classes[i].Class == "gold" {
			gold = &rep.Classes[i]
		}
	}
	if gold == nil {
		t.Fatalf("no gold class row in report: %+v", rep.Classes)
	}
	if gold.RetriedAfter429 != second.Retried429 {
		t.Fatalf("class retried_after_429 = %d, want %d", gold.RetriedAfter429, second.Retried429)
	}
	if out := rep.Render(); !strings.Contains(out, "r429") {
		t.Fatalf("rendered report missing the r429 column:\n%s", out)
	}
}

// TestRetryAfterHTTPDate: a 429 whose Retry-After carries the RFC 9110
// HTTP-date form (instead of delta-seconds) paces the retry exactly
// like the numeric form — the generator waits at least until the named
// instant before the attempt that succeeds.
func TestRetryAfterHTTPDate(t *testing.T) {
	var calls int64
	start := time.Now()
	tsrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if atomic.AddInt64(&calls, 1) == 1 {
			// +2s: the HTTP-date form truncates to whole seconds, so a
			// +1s hint could collapse to nearly zero; two seconds out the
			// truncated instant is always at least one second away.
			w.Header().Set("Retry-After", time.Now().Add(2*time.Second).UTC().Format(http.TimeFormat))
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"id":"r-fake","experiment":"table1","status":"done"}`)
	}))
	t.Cleanup(tsrv.Close)
	hc := &HTTPClient{C: serve.NewClient(tsrv.URL, nil), Timeout: 15 * time.Second, Retry429: 2}
	resp := hc.Do(context.Background(), Request{Seq: 0, Experiment: "table1", Options: bench.QuickOptions()})
	if resp.HTTPStatus != http.StatusOK || resp.Retried429 != 1 {
		t.Fatalf("HTTP-date retry: %+v", resp)
	}
	// Insist the hint actually paced the retry: a zero-parsed hint
	// would come back after the 100ms fallback, well under the
	// truncated instant's one-second floor.
	if waited := time.Since(start); waited < 900*time.Millisecond {
		t.Fatalf("retry came back after %v, want the HTTP-date hint (1-2s) honored", waited)
	}
}

// TestRetry429Disabled: a negative Retry429 surfaces the 429 verbatim.
func TestRetry429Disabled(t *testing.T) {
	var calls int
	tsrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	t.Cleanup(tsrv.Close)
	hc := &HTTPClient{C: serve.NewClient(tsrv.URL, nil), Timeout: 5 * time.Second, Retry429: -1}
	resp := hc.Do(context.Background(), Request{Seq: 0, Experiment: "table1", Options: bench.QuickOptions()})
	if resp.HTTPStatus != http.StatusTooManyRequests || resp.Retried429 != 0 {
		t.Fatalf("disabled retry: %+v", resp)
	}
	if calls != 1 {
		t.Fatalf("server saw %d calls, want 1", calls)
	}
}
