package workload

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"piumagcn/internal/bench"
	"piumagcn/internal/store"
)

// The trace wire format reuses internal/store's length-prefixed CRC32C
// framing (one source of truth for framing across the WAL and traces).
// Payloads are canonical JSON records discriminated by "kind":
//
//	{"kind":"scenario", ...}   exactly one, first — the full scenario
//	{"kind":"req", ...}        one per issued request, in seq order
//	{"kind":"resp", ...}       one per settled request, in seq order,
//	                           written after the run completes
//
// Request records carry only schedule-derived fields (offset, tenant,
// template options), so a seeded scenario writes byte-identical request
// streams on every run; response records carry the measured outcome.
// Replay re-frames the recorded request payload bytes verbatim, which
// is what makes a replayed trace byte-identical to its source.

// TraceRequest is one issued request as recorded.
type TraceRequest struct {
	Kind string `json:"kind"` // "req"
	Seq  int64  `json:"seq"`
	// OffsetUS is the scheduled issue offset from run start, in
	// microseconds (schedule time, not wall time — deterministic).
	OffsetUS   int64         `json:"offset_us"`
	Tenant     string        `json:"tenant"`
	Class      string        `json:"class"`
	Experiment string        `json:"experiment"`
	Options    bench.Options `json:"options"`
}

// Offset is the scheduled issue time.
func (r TraceRequest) Offset() time.Duration {
	return time.Duration(r.OffsetUS) * time.Microsecond
}

// TraceResponse is one settled request's outcome as recorded.
type TraceResponse struct {
	Kind string `json:"kind"` // "resp"
	Seq  int64  `json:"seq"`
	// HTTPStatus is the transport status (0 for transport failures and
	// engine-side sheds).
	HTTPStatus int `json:"http_status,omitempty"`
	// RunStatus is the terminal serve status ("done", "failed", ...);
	// empty when no run resource came back.
	RunStatus string `json:"run_status,omitempty"`
	// RunID is the content-addressed run the request mapped to.
	RunID string `json:"run_id,omitempty"`
	// LatencyUS is the request's observed latency in microseconds.
	LatencyUS int64  `json:"latency_us"`
	Err       string `json:"err,omitempty"`
	// Retried429 counts 429 rounds absorbed before this outcome
	// (omitempty keeps pre-backpressure traces byte-identical).
	Retried429 int64 `json:"retried_429,omitempty"`
}

// Latency is the observed request latency.
func (r TraceResponse) Latency() time.Duration {
	return time.Duration(r.LatencyUS) * time.Microsecond
}

type traceHeader struct {
	Kind     string   `json:"kind"` // "scenario"
	Scenario Scenario `json:"scenario"`
}

// TraceWriter records a run. It is not safe for concurrent use: the
// engine serializes writes (requests from the scheduler goroutine,
// responses in seq order after the run).
type TraceWriter struct {
	fw *store.FrameWriter
}

// NewTraceWriter writes the scenario header frame and returns the
// writer.
func NewTraceWriter(w io.Writer, sc Scenario) (*TraceWriter, error) {
	tw := &TraceWriter{fw: store.NewFrameWriter(w)}
	payload, err := json.Marshal(traceHeader{Kind: "scenario", Scenario: sc.normalized()})
	if err != nil {
		return nil, fmt.Errorf("workload: encoding trace header: %w", err)
	}
	if err := tw.fw.WriteFrame(payload); err != nil {
		return nil, fmt.Errorf("workload: writing trace header: %w", err)
	}
	return tw, nil
}

// WriteRequest records one issued request and returns the encoded
// payload (replay re-frames these bytes verbatim).
func (tw *TraceWriter) WriteRequest(r TraceRequest) ([]byte, error) {
	r.Kind = "req"
	payload, err := json.Marshal(r)
	if err != nil {
		return nil, fmt.Errorf("workload: encoding request %d: %w", r.Seq, err)
	}
	if err := tw.fw.WriteFrame(payload); err != nil {
		return nil, fmt.Errorf("workload: writing request %d: %w", r.Seq, err)
	}
	return payload, nil
}

// WriteRequestRaw re-frames a recorded request payload byte for byte.
func (tw *TraceWriter) WriteRequestRaw(payload []byte) error {
	return tw.fw.WriteFrame(payload)
}

// WriteResponse records one settled request.
func (tw *TraceWriter) WriteResponse(r TraceResponse) error {
	r.Kind = "resp"
	payload, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("workload: encoding response %d: %w", r.Seq, err)
	}
	if err := tw.fw.WriteFrame(payload); err != nil {
		return fmt.Errorf("workload: writing response %d: %w", r.Seq, err)
	}
	return nil
}

// BytesWritten is the trace's size so far.
func (tw *TraceWriter) BytesWritten() int64 { return tw.fw.BytesWritten() }

// Trace is a fully decoded recording.
type Trace struct {
	Scenario Scenario
	Requests []TraceRequest
	// RawRequests holds each request's exact payload bytes, index-
	// aligned with Requests; replay re-frames them verbatim.
	RawRequests [][]byte
	Responses   []TraceResponse
}

// ReadTrace decodes a recording. It fails on a missing or misplaced
// scenario header, an unknown record kind, or a corrupt frame
// (truncated response suffixes from a crashed run are NOT an error:
// requests without responses simply stay unsettled).
func ReadTrace(r io.Reader) (*Trace, error) {
	sc := store.NewFrameScanner(r)
	tr := &Trace{}
	n := 0
	for sc.Scan() {
		payload := sc.Frame()
		var kind struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal(payload, &kind); err != nil {
			return nil, fmt.Errorf("workload: trace frame %d is not a JSON record: %v", n, err)
		}
		if n == 0 && kind.Kind != "scenario" {
			return nil, fmt.Errorf("workload: trace must start with a scenario header, got %q", kind.Kind)
		}
		switch kind.Kind {
		case "scenario":
			if n != 0 {
				return nil, fmt.Errorf("workload: scenario header at frame %d, want frame 0", n)
			}
			var h traceHeader
			if err := json.Unmarshal(payload, &h); err != nil {
				return nil, fmt.Errorf("workload: decoding trace header: %v", err)
			}
			tr.Scenario = h.Scenario
		case "req":
			var req TraceRequest
			if err := json.Unmarshal(payload, &req); err != nil {
				return nil, fmt.Errorf("workload: decoding request frame %d: %v", n, err)
			}
			tr.Requests = append(tr.Requests, req)
			tr.RawRequests = append(tr.RawRequests, append([]byte(nil), payload...))
		case "resp":
			var resp TraceResponse
			if err := json.Unmarshal(payload, &resp); err != nil {
				return nil, fmt.Errorf("workload: decoding response frame %d: %v", n, err)
			}
			tr.Responses = append(tr.Responses, resp)
		default:
			return nil, fmt.Errorf("workload: unknown trace record kind %q at frame %d", kind.Kind, n)
		}
		n++
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: reading trace: %w", err)
	}
	if tail := sc.Tail(); !tail.Clean() {
		return nil, fmt.Errorf("workload: corrupt trace tail at byte %d (%s)", tail.Offset, tail.Reason)
	}
	if n == 0 {
		return nil, fmt.Errorf("workload: empty trace")
	}
	return tr, nil
}
