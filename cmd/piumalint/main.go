// Command piumalint runs the repo's static-analysis suite
// (internal/lint) over package patterns: the determinism, lock
// discipline, error handling, context hygiene and metric label
// invariants that the golden tests and the WAL replay depend on,
// machine-checked at the AST/type level — plus the interprocedural
// analyzers (lockorder, gorolifetime, detertaint), which see call
// edges across package boundaries.
//
// Usage:
//
//	piumalint [flags] [packages]
//
//	piumalint ./...                          # whole module, default scoping
//	piumalint -analyzer determinism ./...    # one analyzer, every package
//	piumalint -json ./internal/sim           # machine-readable findings
//	piumalint -cache .lintcache ./...        # content-hash result cache
//	piumalint -baseline lint.baseline ./...  # fail only on new findings
//
// Patterns are "./..." walks, directory paths, or import paths inside
// the module. Without -analyzer each analyzer runs over its default
// scope (e.g. determinism covers the simulation and codec packages);
// with -analyzer the named analyzers run on every listed package.
// Findings can be suppressed with "//lint:ignore <analyzer> <reason>"
// on or above the offending line.
//
// The -cache directory keys results by a content hash over every file
// of the analyzed package and its transitive module-internal imports,
// so a warm run replays byte-identical diagnostics without
// type-checking. -baseline FILE subtracts previously recorded findings
// (by path, analyzer and message — line numbers are ignored so the
// ratchet survives unrelated edits); -write-baseline records the
// current findings into FILE and exits clean.
//
// Exit status: 0 clean, 1 findings, 2 usage or load errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"piumagcn/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("piumalint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	analyzerFlag := fs.String("analyzer", "", "comma-separated analyzer names to run (bypasses default package scoping)")
	listFlag := fs.Bool("list", false, "list analyzers and exit")
	cacheFlag := fs.String("cache", "", "directory for the content-hash result cache (empty disables caching)")
	baselineFlag := fs.String("baseline", "", "baseline file: fail only on findings not recorded in it")
	writeBaselineFlag := fs.Bool("write-baseline", false, "record current findings into the -baseline file and exit clean")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: piumalint [flags] [packages]\n\nAnalyzers:\n")
		for _, a := range lint.All() {
			fmt.Fprintf(stderr, "  %-16s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(stderr, "\nFlags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *listFlag {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *writeBaselineFlag && *baselineFlag == "" {
		fmt.Fprintln(stderr, "piumalint: -write-baseline requires -baseline FILE")
		return 2
	}

	var selected []*lint.Analyzer
	if *analyzerFlag != "" {
		for _, name := range strings.Split(*analyzerFlag, ",") {
			a, err := lint.ByName(strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintln(stderr, err)
				return 2
			}
			selected = append(selected, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader, err := lint.NewLoader(".")
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	paths, err := loader.ExpandPatterns(patterns)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if len(paths) == 0 {
		fmt.Fprintln(stderr, "piumalint: no packages matched")
		return 2
	}

	var cache *resultCache
	if *cacheFlag != "" {
		cache = &resultCache{dir: *cacheFlag}
	}

	diags, code := analyze(loader, cache, paths, selected, stderr)
	if code != 0 {
		return code
	}
	lint.SortDiagnostics(diags)

	if *writeBaselineFlag {
		if err := writeBaseline(*baselineFlag, diags, loader.ModuleDir); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		fmt.Fprintf(stdout, "piumalint: recorded %d finding(s) in %s\n", len(diags), *baselineFlag)
		return 0
	}
	if *baselineFlag != "" {
		diags, err = applyBaseline(*baselineFlag, diags, loader.ModuleDir)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// analyze runs the per-package analyzers over each path and the module
// analyzers over the whole target set, consulting the cache around
// every unit of work. A cache hit skips loading (and type-checking)
// entirely, which is the point: a warm CI run replays byte-identical
// results from content hashes alone.
func analyze(loader *lint.Loader, cache *resultCache, paths []string, selected []*lint.Analyzer, stderr *os.File) ([]lint.Diagnostic, int) {
	var selectedPer, selectedMod []*lint.Analyzer
	for _, a := range selected {
		if a.RunModule != nil {
			selectedMod = append(selectedMod, a)
		} else {
			selectedPer = append(selectedPer, a)
		}
	}

	var diags []lint.Diagnostic

	// Per-package analyzers.
	for _, path := range paths {
		meta, err := loader.Scan(path)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return nil, 2
		}
		analyzers := selectedPer
		if selected == nil {
			for _, a := range lint.Applicable(meta.Path, meta.Name) {
				if a.RunModule == nil {
					analyzers = append(analyzers, a)
				}
			}
		}
		if len(analyzers) == 0 {
			continue
		}
		closure, err := loader.ClosureHash(path)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return nil, 2
		}
		key := cacheKey("package", analyzers, closure)
		if cached, ok := cache.get(key); ok {
			diags = append(diags, cached...)
			continue
		}
		pkg, err := loader.Load(path)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return nil, 2
		}
		got := lint.Run(pkg, analyzers)
		cache.put(key, got)
		diags = append(diags, got...)
	}

	// Module analyzers: one whole-module view, one cache entry per
	// analyzer (a lock-order cycle can thread through packages that are
	// not targets, so the key must cover the full target closure).
	modAnalyzers := selectedMod
	if selected == nil {
		for _, a := range lint.All() {
			if a.RunModule != nil {
				modAnalyzers = append(modAnalyzers, a)
			}
		}
	}
	for _, a := range modAnalyzers {
		var targets []string
		for _, path := range paths {
			meta, err := loader.Scan(path)
			if err != nil {
				fmt.Fprintln(stderr, err)
				return nil, 2
			}
			if selected != nil || a.Applies == nil || a.Applies(meta.Path, meta.Name) {
				targets = append(targets, path)
			}
		}
		if len(targets) == 0 {
			continue
		}
		closure, err := loader.ClosureHash(targets...)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return nil, 2
		}
		key := cacheKey("module", []*lint.Analyzer{a}, closure)
		if cached, ok := cache.get(key); ok {
			diags = append(diags, cached...)
			continue
		}
		pkgs := make([]*lint.Package, 0, len(targets))
		for _, path := range targets {
			pkg, err := loader.Load(path)
			if err != nil {
				fmt.Fprintln(stderr, err)
				return nil, 2
			}
			pkgs = append(pkgs, pkg)
		}
		got := lint.RunModule(lint.NewModule(pkgs...), pkgs, []*lint.Analyzer{a})
		cache.put(key, got)
		diags = append(diags, got...)
	}
	return diags, 0
}
