// Command piumalint runs the repo's static-analysis suite
// (internal/lint) over package patterns: the determinism, lock
// discipline, error handling, context hygiene and metric label
// invariants that the golden tests and the WAL replay depend on,
// machine-checked at the AST/type level.
//
// Usage:
//
//	piumalint [flags] [packages]
//
//	piumalint ./...                          # whole module, default scoping
//	piumalint -analyzer determinism ./...    # one analyzer, every package
//	piumalint -json ./internal/sim           # machine-readable findings
//
// Patterns are "./..." walks, directory paths, or import paths inside
// the module. Without -analyzer each analyzer runs over its default
// scope (e.g. determinism covers the simulation and codec packages);
// with -analyzer the named analyzers run on every listed package.
// Findings can be suppressed with "//lint:ignore <analyzer> <reason>"
// on or above the offending line.
//
// Exit status: 0 clean, 1 findings, 2 usage or load errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"piumagcn/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("piumalint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	analyzerFlag := fs.String("analyzer", "", "comma-separated analyzer names to run (bypasses default package scoping)")
	listFlag := fs.Bool("list", false, "list analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: piumalint [flags] [packages]\n\nAnalyzers:\n")
		for _, a := range lint.All() {
			fmt.Fprintf(stderr, "  %-16s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(stderr, "\nFlags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *listFlag {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	var selected []*lint.Analyzer
	if *analyzerFlag != "" {
		for _, name := range strings.Split(*analyzerFlag, ",") {
			a, err := lint.ByName(strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintln(stderr, err)
				return 2
			}
			selected = append(selected, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader, err := lint.NewLoader(".")
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	paths, err := loader.ExpandPatterns(patterns)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if len(paths) == 0 {
		fmt.Fprintln(stderr, "piumalint: no packages matched")
		return 2
	}

	var diags []lint.Diagnostic
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		analyzers := selected
		if analyzers == nil {
			analyzers = lint.Applicable(pkg.Path, pkg.Types.Name())
		}
		if len(analyzers) == 0 {
			continue
		}
		diags = append(diags, lint.Run(pkg, analyzers)...)
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
