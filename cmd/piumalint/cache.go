package main

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"piumagcn/internal/lint"
)

// cacheVersion salts every key: bump it when diagnostic formats or
// analyzer semantics change so stale entries cannot replay.
const cacheVersion = "piumalint-cache-v1"

// resultCache is a content-addressed store of analysis results: one
// JSON file of diagnostics per key, written atomically. Keys bind the
// tool version, the analyzer set and the content hash of every file
// the analysis could have seen, so a hit is byte-for-byte equivalent
// to re-running.
type resultCache struct {
	dir string
}

// cacheKey builds the key for running the named analyzers against
// content identified by closureHash.
func cacheKey(kind string, analyzers []*lint.Analyzer, closureHash string) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%s\x00", cacheVersion, kind)
	for _, a := range analyzers {
		fmt.Fprintf(h, "%s\x00", a.Name)
	}
	fmt.Fprintf(h, "%s", closureHash)
	return hex.EncodeToString(h.Sum(nil))
}

// get returns the cached diagnostics for key, or false on any miss
// (absent, unreadable, undecodable — the cache is advisory).
func (c *resultCache) get(key string) ([]lint.Diagnostic, bool) {
	if c == nil {
		return nil, false
	}
	data, err := os.ReadFile(filepath.Join(c.dir, key+".json"))
	if err != nil {
		return nil, false
	}
	var diags []lint.Diagnostic
	if err := json.Unmarshal(data, &diags); err != nil {
		return nil, false
	}
	return diags, true
}

// put stores diagnostics under key (best-effort: cache errors never
// fail the lint run).
func (c *resultCache) put(key string, diags []lint.Diagnostic) {
	if c == nil {
		return
	}
	if diags == nil {
		diags = []lint.Diagnostic{}
	}
	data, err := json.Marshal(diags)
	if err != nil {
		return
	}
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return
	}
	tmp, err := os.CreateTemp(c.dir, "entry-*")
	if err != nil {
		return
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), filepath.Join(c.dir, key+".json")); err != nil {
		os.Remove(tmp.Name())
	}
}
