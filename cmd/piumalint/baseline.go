package main

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"piumagcn/internal/lint"
)

// The baseline file lets the analyzers land strict without blocking
// the tree: record today's findings, then fail only on new ones.
// Entries are keyed by (module-relative path, analyzer, message) —
// line and column are deliberately dropped so unrelated edits that
// shift code do not resurrect baselined findings. The match is a
// multiset: the ratchet only tightens (fixing a finding and adding an
// identical one elsewhere in the same file still fails).

// baselineKey renders a diagnostic's ratchet identity.
func baselineKey(d lint.Diagnostic, moduleDir string) string {
	path := d.Path
	if rel, err := filepath.Rel(moduleDir, path); err == nil && !strings.HasPrefix(rel, "..") {
		path = filepath.ToSlash(rel)
	}
	return path + "\t" + d.Analyzer + "\t" + d.Message
}

// writeBaseline records the current findings, one key per line.
func writeBaseline(path string, diags []lint.Diagnostic, moduleDir string) error {
	var b strings.Builder
	for _, d := range diags {
		b.WriteString(baselineKey(d, moduleDir))
		b.WriteByte('\n')
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

// applyBaseline filters out findings recorded in the baseline file,
// returning only the new ones.
func applyBaseline(path string, diags []lint.Diagnostic, moduleDir string) ([]lint.Diagnostic, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("piumalint: reading baseline: %w", err)
	}
	defer f.Close()
	allowed := make(map[string]int)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimRight(sc.Text(), "\r")
		if line == "" {
			continue
		}
		allowed[line]++
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("piumalint: reading baseline: %w", err)
	}
	var fresh []lint.Diagnostic
	for _, d := range diags {
		key := baselineKey(d, moduleDir)
		if allowed[key] > 0 {
			allowed[key]--
			continue
		}
		fresh = append(fresh, d)
	}
	return fresh, nil
}
