// Command piumaload is the load generator for piumaserve (see
// internal/workload): it turns a seeded scenario spec — arrival
// process, multi-tenant client mix, SLO classes — into a deterministic
// request schedule, drives it against a live server, and reduces the
// outcomes to a per-SLO-class latency and fairness report.
//
// Scenarios are open-loop by default (requests fire at scheduled
// offsets no matter how many are in flight). mode=closed instead runs
// a fixed worker population with exponential think time, so throughput
// couples to server latency — the interactive-user model.
//
// Usage:
//
//	piumaload -target http://localhost:8080 -scenario canonical
//	piumaload -target http://localhost:8080 \
//	    -scenario 'rate=40,process=gamma,shape=0.5,duration=10s;tenant=search,class=gold,weight=3,experiment=table1,templates=4;tenant=batch,class=batch,experiment=fig9'
//	piumaload -target http://localhost:8080 \
//	    -scenario 'mode=closed,concurrency=8,think=100ms,duration=10s;tenant=users,class=gold,experiment=table1,templates=4'
//	piumaload -target ... -scenario smoke -record run.trace
//	piumaload -target ... -replay run.trace
//	piumaload -scenarios
//
// The target may be a single piumaserve or a piumagate front door —
// the API is identical either way.
//
// -scenario accepts either a named scenario (see -scenarios) or a full
// key=value spec. -record writes the run as a length-prefixed CRC32C
// trace (the same framing as the serve journal); -replay re-issues a
// recorded trace's request stream byte-for-byte against the target.
// The report prints as text by default, or canonical JSON with -json.
//
// Exit status is 0 for a clean run, 1 for usage or transport failures,
// and 2 when the run finished but saw request errors (backpressure —
// 429/503 — is not an error; use -fail-on-backpressure to tighten).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"piumagcn/internal/serve"
	"piumagcn/internal/workload"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		target    = flag.String("target", "http://127.0.0.1:8080", "piumaserve base URL")
		scenario  = flag.String("scenario", "", "named scenario or key=value spec (see -scenarios)")
		list      = flag.Bool("scenarios", false, "list the named scenarios and exit")
		record    = flag.String("record", "", "write the run trace to this file")
		replay    = flag.String("replay", "", "replay a recorded trace instead of generating a schedule")
		jsonOut   = flag.Bool("json", false, "print the report as canonical JSON instead of text")
		timeout   = flag.Duration("request-timeout", 60*time.Second, "per-request deadline")
		inFlight  = flag.Int("max-in-flight", 512, "open-loop concurrency cap; requests over it shed as backpressure (negative = unbounded)")
		skipCheck = flag.Bool("skip-health-check", false, "skip the target /healthz probe before the run")
		failBP    = flag.Bool("fail-on-backpressure", false, "exit 2 on backpressure (429/503/shed), not just errors")
		retry429  = flag.Int("retry-429", 0, "retries after a 429, honoring Retry-After (0 = default 2, negative disables)")
	)
	flag.Parse()

	if *list {
		for _, name := range workload.NamedScenarios() {
			s, err := workload.Named(name)
			if err != nil {
				fmt.Fprintf(os.Stderr, "piumaload: %v\n", err)
				return 1
			}
			fmt.Printf("%-12s %s\n", name, s.String())
		}
		return 0
	}
	if (*scenario == "") == (*replay == "") {
		fmt.Fprintln(os.Stderr, "piumaload: exactly one of -scenario or -replay is required")
		flag.Usage()
		return 1
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	client := serve.NewClient(*target, nil)
	engine := &workload.Engine{
		Client:      &workload.HTTPClient{C: client, Timeout: *timeout, Retry429: *retry429},
		MaxInFlight: *inFlight,
		Metrics:     workload.NewMetrics(),
	}

	var trace *workload.Trace
	if *replay != "" {
		f, err := os.Open(*replay)
		if err != nil {
			fmt.Fprintf(os.Stderr, "piumaload: %v\n", err)
			return 1
		}
		trace, err = workload.ReadTrace(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "piumaload: %v\n", err)
			return 1
		}
		engine.Scenario = trace.Scenario
	} else {
		sc, err := resolveScenario(*scenario)
		if err != nil {
			fmt.Fprintf(os.Stderr, "piumaload: %v\n", err)
			return 1
		}
		engine.Scenario = sc
	}

	if !*skipCheck {
		probe, cancel := context.WithTimeout(ctx, 5*time.Second)
		err := client.Healthz(probe)
		cancel()
		if err != nil {
			fmt.Fprintf(os.Stderr, "piumaload: target %s not healthy: %v (use -skip-health-check to force)\n", *target, err)
			return 1
		}
		exps, err := client.Experiments(ctx)
		if err != nil {
			fmt.Fprintf(os.Stderr, "piumaload: listing experiments: %v\n", err)
			return 1
		}
		ids := make([]string, 0, len(exps))
		for _, e := range exps {
			ids = append(ids, e.ID)
		}
		if err := engine.Scenario.ValidateExperiments(ids); err != nil {
			fmt.Fprintf(os.Stderr, "piumaload: %v\n", err)
			return 1
		}
	}

	if *record != "" {
		f, err := os.Create(*record)
		if err != nil {
			fmt.Fprintf(os.Stderr, "piumaload: %v\n", err)
			return 1
		}
		defer f.Close()
		tw, err := workload.NewTraceWriter(f, engine.Scenario)
		if err != nil {
			fmt.Fprintf(os.Stderr, "piumaload: %v\n", err)
			return 1
		}
		engine.Trace = tw
	}

	var (
		rep *workload.Report
		err error
	)
	if trace != nil {
		rep, err = engine.Replay(ctx, trace)
	} else {
		rep, err = engine.Run(ctx)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "piumaload: %v\n", err)
		return 1
	}

	if *jsonOut {
		if err := rep.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "piumaload: %v\n", err)
			return 1
		}
	} else {
		fmt.Print(rep.Render())
	}
	if rep.Errors > 0 || rep.Timeouts > 0 || (*failBP && rep.Backpressure > 0) {
		return 2
	}
	return 0
}

// resolveScenario accepts a named scenario or a raw spec (anything
// containing '=' is treated as a spec).
func resolveScenario(in string) (workload.Scenario, error) {
	if !strings.Contains(in, "=") {
		return workload.Named(in)
	}
	return workload.Parse(in)
}
