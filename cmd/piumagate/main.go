// Command piumagate is the cluster front door for multi-replica
// serving (see internal/gate): an HTTP proxy exposing the same /v1/*
// API as piumaserve while fanning out to N replicas behind a pluggable
// routing policy, with active health probing, token-bucket admission
// control, per-SLO-class quotas and mid-flight failover.
//
// Usage:
//
//	piumaserve -addr :8081 -replica b0 &
//	piumaserve -addr :8082 -replica b1 &
//	piumagate -addr :8080 \
//	    -backends http://127.0.0.1:8081,http://127.0.0.1:8082 \
//	    -policy cache-affinity -rate 200 -quota gold=100 -quota batch=10
//
// Then every existing client works unchanged against the cluster:
//
//	curl localhost:8080/v1/experiments
//	curl -X POST localhost:8080/v1/runs -H 'X-SLO-Class: gold' \
//	    -d '{"experiment":"fig5","options":{"quick":true}}'
//	curl localhost:8080/v1/gate/backends
//	curl localhost:8080/metrics
//
// Routing policies (-policy): round-robin, least-loaded,
// cache-affinity. Cache-affinity consistent-hashes the
// content-addressed RunID so repeat submissions land on the replica
// that already caches the result.
//
// A backend that dies mid-request is marked down and the submission is
// resubmitted to the next healthy replica — safe because RunIDs are
// content addresses and runs are journaled server-side, so the worst
// case is a dedup or cache hit, never a duplicate simulation.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"piumagcn/internal/chaos"
	"piumagcn/internal/gate"
	"piumagcn/internal/serve"
	"piumagcn/internal/store"
)

// quotaFlag accumulates repeated -quota class=rate flags.
type quotaFlag map[string]float64

func (q quotaFlag) String() string {
	parts := make([]string, 0, len(q))
	for class, rate := range q {
		parts = append(parts, fmt.Sprintf("%s=%g", class, rate))
	}
	return strings.Join(parts, ",")
}

func (q quotaFlag) Set(v string) error {
	class, rateStr, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want class=rate, got %q", v)
	}
	rate, err := strconv.ParseFloat(rateStr, 64)
	if err != nil || rate <= 0 {
		return fmt.Errorf("quota rate must be a positive number, got %q", rateStr)
	}
	q[strings.TrimSpace(class)] = rate
	return nil
}

func main() {
	quotas := quotaFlag{}
	var (
		addr          = flag.String("addr", ":8080", "listen address")
		backends      = flag.String("backends", "", "comma-separated replica base URLs (required)")
		policy        = flag.String("policy", gate.PolicyRoundRobin, "routing policy: "+strings.Join(gate.Policies(), ", "))
		rate          = flag.Float64("rate", 0, "global admission rate in runs/second (0 = unlimited)")
		burst         = flag.Float64("burst", 0, "admission token-bucket depth (0 = max(1, rate))")
		probeInterval = flag.Duration("probe-interval", time.Second, "health-probe period (negative disables active probing)")
		probeTimeout  = flag.Duration("probe-timeout", 2*time.Second, "per-probe deadline")
		seed          = flag.Int64("seed", 1, "seed for probe-backoff jitter (reproducibility)")
		grace         = flag.Duration("shutdown-grace", 30*time.Second, "drain deadline after SIGTERM")
		markDown      = flag.Int("markdown-after", 2, "consecutive probe failures before a replica is marked unhealthy")
		brkThreshold  = flag.Int("breaker-threshold", 3, "consecutive submit failures that open a backend's circuit (negative disables)")
		brkCooldown   = flag.Duration("breaker-cooldown", 5*time.Second, "open-circuit cooldown before the half-open probe")
		hedgeDelay    = flag.Duration("hedge-delay", 0, "hedge idempotent run-status GETs to a second replica after this delay (0 disables)")
		chaosSpec     = flag.String("chaos", "", "client-side chaos schedule applied to the fan-out transport (chaos.Spec, e.g. 'seed=7;fault=reset,target=b1,at=2s,for=3s')")
		dataDir       = flag.String("data-dir", "", "journal admitted runs to <dir>/intake.wal and recover ownership on restart (empty = stateless gate)")
		fsync         = flag.String("fsync", "always", "intake-ledger fsync policy: always, interval, or never")
		gossipEvery   = flag.Duration("gossip-interval", 0, "SWIM gossip protocol period (0 disables gossip)")
		gossipTimeout = flag.Duration("gossip-timeout", time.Second, "per-gossip-exchange deadline")
		suspectAfter  = flag.Int("suspect-after", 2, "consecutive failed gossip probe rounds before a replica is suspect")
		deadAfter     = flag.Duration("dead-after", 10*time.Second, "unrefuted suspicion age before a replica is confirmed dead")
		reconcile     = flag.Duration("reconcile-interval", 5*time.Second, "anti-entropy sweep period over the intake ledger (requires -data-dir)")
		stealMargin   = flag.Int("steal-margin", 0, "queue-depth imbalance that moves a queued run to the least-loaded replica (0 disables work stealing)")
	)
	flag.Var(quotas, "quota", "per-class admission quota as class=rate (repeatable; classes: gold, silver, bronze, batch)")
	flag.Parse()

	if *backends == "" {
		log.Fatalf("piumagate: -backends is required (comma-separated replica URLs)")
	}
	urls := strings.Split(*backends, ",")

	// -chaos wraps the gate's fan-out transport in the deterministic
	// fault injector, so the whole resilience stack (mark-down,
	// breakers, hedging, failover) can be exercised against a scheduled
	// outage without touching the replicas.
	var hc *http.Client
	if *chaosSpec != "" {
		spec, err := chaos.Parse(*chaosSpec)
		if err != nil {
			log.Fatalf("piumagate: -chaos: %v", err)
		}
		inj := chaos.New(spec, nil)
		hc = chaos.WrapClient(serve.DefaultHTTPClient(), inj, chaos.Targets(urls))
		log.Printf("piumagate: chaos schedule active: %s", spec.String())
	}

	var ledgerSync store.SyncPolicy
	if *dataDir != "" {
		var err error
		ledgerSync, err = store.ParseSyncPolicy(*fsync)
		if err != nil {
			log.Fatalf("piumagate: %v", err)
		}
	} else if *fsync != "always" {
		log.Fatalf("piumagate: -fsync has no effect without -data-dir")
	}

	g, err := gate.New(gate.Config{
		Backends:          urls,
		Policy:            *policy,
		Seed:              *seed,
		ProbeInterval:     *probeInterval,
		ProbeTimeout:      *probeTimeout,
		MarkDownAfter:     *markDown,
		BreakerThreshold:  *brkThreshold,
		BreakerCooldown:   *brkCooldown,
		HedgeDelay:        *hedgeDelay,
		Rate:              *rate,
		Burst:             *burst,
		ClassQuotas:       quotas,
		HTTPClient:        hc,
		DataDir:           *dataDir,
		LedgerSync:        ledgerSync,
		GossipInterval:    *gossipEvery,
		GossipTimeout:     *gossipTimeout,
		SuspectAfter:      *suspectAfter,
		DeadAfter:         *deadAfter,
		ReconcileInterval: *reconcile,
		StealMargin:       *stealMargin,
	})
	if err != nil {
		log.Fatalf("piumagate: %v", err)
	}
	if *dataDir != "" {
		log.Printf("piumagate: intake ledger at %s (%d open run(s) recovered)",
			*dataDir, g.Ledger().NonTerminalLen())
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           g.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("piumagate listening on %s (%d backend(s), policy %s)",
			*addr, len(g.Registry().All()), g.Policy())
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		log.Fatalf("piumagate: %v", err)
	case <-ctx.Done():
	}

	log.Printf("piumagate: draining (grace %v)", *grace)
	drainCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "piumagate: http shutdown: %v\n", err)
	}
	g.Shutdown()
	log.Printf("piumagate: stopped")
}
