// Command graphgen generates the synthetic graphs of the reproduction —
// RMAT (power-law or uniform) and OGB-shaped stand-ins — and prints
// their structural statistics (the columns of Table I).
//
// Usage:
//
//	graphgen -kind rmat -scale 16 -edge-factor 16
//	graphgen -kind uniform -scale 14 -edge-factor 8
//	graphgen -kind ogb -dataset products -max-edges 1000000
//	graphgen -kind density -vertices 100000 -density 1e-4
package main

import (
	"flag"
	"fmt"
	"os"

	"piumagcn/internal/graph"
	"piumagcn/internal/ogb"
	"piumagcn/internal/rmat"
)

func main() {
	var (
		kind       = flag.String("kind", "rmat", "generator: rmat, uniform, ogb, density")
		scale      = flag.Int("scale", 14, "log2 vertex count (rmat/uniform)")
		edgeFactor = flag.Int("edge-factor", 16, "edges per vertex (rmat/uniform)")
		dataset    = flag.String("dataset", "products", "OGB dataset name (ogb)")
		maxEdges   = flag.Int64("max-edges", 1<<21, "edge cap for OGB stand-ins")
		vertices   = flag.Int("vertices", 100000, "vertex count (density)")
		density    = flag.Float64("density", 1e-4, "adjacency density (density)")
		seed       = flag.Int64("seed", 1, "generation seed")
		normalize  = flag.Bool("normalize", false, "also report the GCN-normalized operator")
	)
	flag.Parse()

	csr, err := generate(*kind, *scale, *edgeFactor, *dataset, *maxEdges, *vertices, *density, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	describe("generated graph", csr)
	if *normalize {
		describe("GCN-normalized operator (A+I, symmetric scaling)", graph.NormalizeGCN(csr))
	}
}

func generate(kind string, scale, edgeFactor int, dataset string, maxEdges int64, vertices int, density float64, seed int64) (*graph.CSR, error) {
	switch kind {
	case "rmat":
		return rmat.GenerateCSR(rmat.PowerLaw(scale, edgeFactor, seed))
	case "uniform":
		return rmat.GenerateCSR(rmat.Uniform(scale, edgeFactor, seed))
	case "ogb":
		d, err := ogb.ByName(dataset)
		if err != nil {
			return nil, err
		}
		csr, f, err := ogb.Generate(d, ogb.GenerateOptions{MaxEdges: maxEdges, Seed: seed})
		if err != nil {
			return nil, err
		}
		fmt.Printf("dataset %s scaled by %.4g (full size: |V|=%d |E|=%d)\n", d.Name, f, d.V, d.E)
		return csr, nil
	case "density":
		coo, err := rmat.GenerateByDensity(vertices, density, seed)
		if err != nil {
			return nil, err
		}
		return graph.FromCOO(coo)
	default:
		return nil, fmt.Errorf("graphgen: unknown kind %q (want rmat, uniform, ogb, density)", kind)
	}
}

func describe(label string, csr *graph.CSR) {
	st := graph.ComputeStats(csr)
	fmt.Printf("%s:\n", label)
	fmt.Printf("  |V|        = %d\n", st.NumVertices)
	fmt.Printf("  |E|        = %d\n", st.NumEdges)
	fmt.Printf("  density    = %.3e\n", st.Density)
	fmt.Printf("  avg degree = %.2f\n", st.AvgDegree)
	fmt.Printf("  max degree = %d\n", st.MaxDegree)
	fmt.Printf("  degree CV  = %.2f\n", st.DegreeCV)
	fmt.Printf("  CSR bytes  = %d (8B rows, 4B cols, 8B values)\n", csr.MemoryFootprint(8, 4, 8))
}
