// Command spmmsim runs a single SpMM simulation on the PIUMA machine
// model with every architectural parameter exposed as a flag — the tool
// behind the sensitivity studies of Section IV.
//
// Usage:
//
//	spmmsim -kernel dma -cores 8 -k 256
//	spmmsim -kernel loop-unrolled -cores 32 -k 64 -dram-latency 360
//	spmmsim -kernel dma -threads-per-mtp 1 -k 8 -dram-latency 720
package main

import (
	"flag"
	"fmt"
	"os"

	"piumagcn/internal/amodel"
	"piumagcn/internal/piuma"
	"piumagcn/internal/piuma/kernels"
	"piumagcn/internal/rmat"
	"piumagcn/internal/sim"
)

func main() {
	var (
		kernel        = flag.String("kernel", "dma", "kernel: dma or loop-unrolled")
		scale         = flag.Int("scale", 13, "log2 vertex count of the RMAT input")
		edgeFactor    = flag.Int("edge-factor", 16, "edges per vertex")
		k             = flag.Int("k", 256, "embedding dimension")
		cores         = flag.Int("cores", 8, "PIUMA cores")
		mtps          = flag.Int("mtps-per-core", 4, "MTP pipelines per core")
		threadsPerMTP = flag.Int("threads-per-mtp", 16, "hardware threads per MTP")
		clock         = flag.Float64("clock-ghz", 1.0, "pipeline clock (GHz)")
		dramLatency   = flag.Int("dram-latency", 45, "DRAM latency (ns)")
		sliceBW       = flag.Float64("slice-bandwidth", 25.6e9, "per-slice DRAM bandwidth (B/s)")
		remoteBase    = flag.Int("remote-latency", 240, "remote-slice base latency (ns)")
		hop           = flag.Int("hop-latency", 10, "per-hop network latency (ns)")
		dmaQueue      = flag.Int("dma-queue", 16, "DMA descriptor queue depth")
		seed          = flag.Int64("seed", 1, "RMAT seed")
	)
	flag.Parse()

	g, err := rmat.GenerateCSR(rmat.PowerLaw(*scale, *edgeFactor, *seed))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	cfg := piuma.DefaultConfig()
	cfg.Cores = *cores
	cfg.MTPsPerCore = *mtps
	cfg.ThreadsPerMTP = *threadsPerMTP
	cfg.ClockGHz = *clock
	cfg.DRAMLatency = sim.Time(*dramLatency) * sim.Nanosecond
	cfg.SliceBandwidth = *sliceBW
	cfg.RemoteBaseLatency = sim.Time(*remoteBase) * sim.Nanosecond
	cfg.HopLatency = sim.Time(*hop) * sim.Nanosecond
	cfg.DMAQueueDepth = *dmaQueue

	res, err := kernels.Run(kernels.Kind(*kernel), cfg, g, *k)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	prob := amodel.Problem{V: res.V, E: res.E, K: int64(*k), W: amodel.DefaultWidths()}
	bw := cfg.AggregateBandwidth()
	modelGF, err := prob.GFLOPS(amodel.Bandwidth{Read: bw, Write: bw})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("kernel          : %s\n", res.Kernel)
	fmt.Printf("graph           : |V|=%d |E|=%d K=%d\n", res.V, res.E, res.K)
	fmt.Printf("machine         : %d cores x %d MTPs x %d threads @ %.1f GHz, %.1f GB/s/slice\n",
		cfg.Cores, cfg.MTPsPerCore, cfg.ThreadsPerMTP, cfg.ClockGHz, cfg.SliceBandwidth/1e9)
	fmt.Printf("elapsed         : %.3f ms (%d simulation events)\n", res.Elapsed.Seconds()*1e3, res.Events)
	fmt.Printf("throughput      : %.2f GFLOPS (%.0f%% of the bandwidth model's %.2f)\n",
		res.GFLOPS, 100*res.GFLOPS/modelGF, modelGF)
	fmt.Printf("slice util      : %.0f%%\n", 100*res.AvgSliceUtilization)
	fmt.Printf("avg NNZ latency : %.0f ns\n", res.AvgNNZLatency.Nanoseconds())
	b := res.Breakdown
	tot := float64(b.Total())
	fmt.Printf("thread time     : nnz %.0f%%  feature %.0f%%  dma-queue %.0f%%  compute %.0f%%  startup %.0f%%  barrier %.0f%%\n",
		100*float64(b.NNZWait)/tot, 100*float64(b.FeatureWait)/tot, 100*float64(b.DMAQueueWait)/tot,
		100*float64(b.Compute)/tot, 100*float64(b.Startup)/tot, 100*float64(b.Barrier)/tot)
}
