// Command piumabench regenerates the paper's tables and figures.
//
// Usage:
//
//	piumabench -list
//	piumabench -experiment fig5
//	piumabench -experiment all -max-sim-edges 262144
//	piumabench -experiment fig9 -quick
//	piumabench -experiment table1 -json
//	piumabench -experiment fig7 -quick -trace fig7.json
//	piumabench -experiment fig8 -profile
//	piumabench -experiment ext-degraded -faults "seed=7,dead-cores=2,net-delay=3,loss=0.05"
//
// Each experiment prints a text report (tables, stacked breakdown bars,
// scaling curves) whose rows mirror what the paper's figure reports; see
// EXPERIMENTS.md for the paper-vs-measured index. With -json the same
// reports are emitted in the wire format of the piumaserve API (one
// JSON document per experiment). An interrupt (SIGINT/SIGTERM) cancels
// the in-flight experiment and exits non-zero.
//
// -trace writes every simulated run's span activity as a Chrome
// trace_event JSON file — open it in ui.perfetto.dev or
// chrome://tracing. -profile prints a per-run activity summary after
// each experiment. Either flag also attaches a per-component
// utilization section to the experiment reports.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"piumagcn/internal/bench"
	"piumagcn/internal/obs"
	"piumagcn/internal/serve"
)

func main() {
	var (
		experiment  = flag.String("experiment", "", "experiment ID to run (table1, fig2..fig10, ext-*, or 'all')")
		list        = flag.Bool("list", false, "list available experiments")
		quick       = flag.Bool("quick", false, "trim sweep points for a fast run")
		maxSimEdges = flag.Int64("max-sim-edges", 1<<17, "edge cap for event-level simulations")
		seed        = flag.Int64("seed", 7, "synthetic-generation seed")
		jsonOut     = flag.Bool("json", false, "emit each report as JSON (the piumaserve wire format)")
		traceOut    = flag.String("trace", "", "write a Chrome trace_event JSON file (open in ui.perfetto.dev)")
		profile     = flag.Bool("profile", false, "print a simulation activity summary after each experiment")
		faultSpec   = flag.String("faults", "", `fault-injection spec for degraded-mode runs, e.g. "seed=7,dead-cores=2,net-delay=3,loss=0.05"`)
	)
	flag.Parse()

	if *list || *experiment == "" {
		fmt.Println("available experiments:")
		for _, e := range bench.All() {
			fmt.Printf("  %-10s %s\n             %s\n", e.ID, e.Title, e.Description)
		}
		if *experiment == "" && !*list {
			fmt.Println("\nrun with -experiment <id> or -experiment all")
		}
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opts := bench.Options{MaxSimEdges: *maxSimEdges, Quick: *quick, Seed: *seed, Faults: *faultSpec}
	if err := opts.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var targets []bench.Experiment
	if *experiment == "all" {
		targets = bench.All()
	} else {
		e, err := bench.ByID(*experiment)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			fmt.Fprintf(os.Stderr, "valid experiment IDs:\n  %s\n", strings.Join(bench.ValidIDs(), "\n  "))
			os.Exit(1)
		}
		targets = []bench.Experiment{e}
	}

	// Either profiling flag attaches a profiler to the experiment
	// context; the bench kernel helpers register every simulated run
	// with it, and each experiment's wall-clock interval lands on the
	// trace's host track (so even analytical experiments like fig2
	// yield a loadable timeline).
	var prof *obs.Profiler
	if *traceOut != "" || *profile {
		prof = obs.NewProfiler(obs.ProfilerOptions{})
		ctx = obs.NewContext(ctx, prof)
	}

	wall := time.Now()
	for _, e := range targets {
		start := time.Now()
		mark := prof.Mark()
		// Each experiment checkpoints its sweep points: if the run is
		// interrupted (Ctrl-C mid-sweep), the completed points still
		// surface as a partial report instead of vanishing.
		cp := bench.NewCheckpoint()
		report, err := e.Run(bench.WithCheckpoint(ctx, cp), opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.ID, err)
			if partial := cp.PartialReport(e); partial != nil {
				fmt.Print(partial.String())
			}
			os.Exit(1)
		}
		if prof != nil {
			prof.RecordHostSpan(e.ID, start.Sub(wall), time.Since(start))
		}
		if *jsonOut {
			if err := serve.EncodeReport(os.Stdout, report, opts, time.Since(start)); err != nil {
				fmt.Fprintf(os.Stderr, "%s: encoding report: %v\n", e.ID, err)
				os.Exit(1)
			}
		} else {
			fmt.Print(report.String())
			fmt.Printf("\n[%s completed in %v]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		}
		if *profile {
			fmt.Printf("[%s simulation activity]\n%s\n", e.ID, prof.SummarySince(mark))
		}
	}

	if *traceOut != "" {
		if err := writeTrace(*traceOut, prof); err != nil {
			fmt.Fprintf(os.Stderr, "writing trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote Chrome trace to %s (load it in ui.perfetto.dev)\n", *traceOut)
	}
}

func writeTrace(path string, prof *obs.Profiler) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := prof.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
