// Command piumaserve exposes the paper's experiment registry as an
// always-on characterization service (see internal/serve): a JSON API
// over a bounded job queue and worker pool with result caching and
// request deduplication.
//
// Usage:
//
//	piumaserve -addr :8080 -workers 4 -queue-depth 32
//
// Then:
//
//	curl localhost:8080/v1/experiments
//	curl -X POST localhost:8080/v1/runs -d '{"experiment":"fig5","options":{"quick":true}}'
//	curl localhost:8080/v1/runs/<id>
//	curl -X POST 'localhost:8080/v1/runs?wait=true' -d '{"experiment":"table1"}'
//	curl localhost:8080/v1/runs/<id>/profile
//	curl localhost:8080/metrics
//
// The /profile endpoint returns a done run's per-component simulation
// utilization breakdown (409 while the run is still queued or running);
// /metrics includes the aggregated simulation counters alongside the
// service's own.
//
// SIGTERM/SIGINT drains gracefully: new submissions get 503, in-flight
// simulations are canceled, and the process exits once the worker pool
// and HTTP listener have stopped (bounded by -shutdown-grace).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"piumagcn/internal/serve"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		workers    = flag.Int("workers", 0, "simulation worker pool size (0 = half the CPUs)")
		queueDepth = flag.Int("queue-depth", 16, "bounded job queue depth (full queue returns 429)")
		cacheCap   = flag.Int("cache-cap", 128, "completed reports kept for cache hits")
		runTimeout = flag.Duration("run-timeout", 0, "per-run execution bound; expired runs report status \"timeout\" with a partial report (0 = unbounded)")
		maxRetries = flag.Int("max-retries", 1, "retries for transient-error run failures, resuming from the run checkpoint (negative disables)")
		retryWait  = flag.Duration("retry-backoff", 100*time.Millisecond, "base delay before the first retry (exponential with jitter; 0 = immediate)")
		grace      = flag.Duration("shutdown-grace", 30*time.Second, "drain deadline after SIGTERM")
	)
	flag.Parse()

	srv := serve.New(serve.Config{
		Workers:      *workers,
		QueueDepth:   *queueDepth,
		CacheCap:     *cacheCap,
		RunTimeout:   *runTimeout,
		MaxRetries:   *maxRetries,
		RetryBackoff: *retryWait,
	})

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("piumaserve listening on %s (%d experiments)", *addr, len(srv.Experiments()))
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		log.Fatalf("piumaserve: %v", err)
	case <-ctx.Done():
	}

	log.Printf("piumaserve: draining (grace %v)", *grace)
	drainCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "piumaserve: worker pool did not drain: %v\n", err)
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "piumaserve: http shutdown: %v\n", err)
	}
	log.Printf("piumaserve: stopped")
}
