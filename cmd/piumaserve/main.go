// Command piumaserve exposes the paper's experiment registry as an
// always-on characterization service (see internal/serve): a JSON API
// over a bounded job queue and worker pool with result caching and
// request deduplication.
//
// Usage:
//
//	piumaserve -addr :8080 -workers 4 -queue-depth 32
//
// Then:
//
//	curl localhost:8080/v1/experiments
//	curl -X POST localhost:8080/v1/runs -d '{"experiment":"fig5","options":{"quick":true}}'
//	curl localhost:8080/v1/runs/<id>
//	curl -X POST 'localhost:8080/v1/runs?wait=true' -d '{"experiment":"table1"}'
//	curl localhost:8080/v1/runs/<id>/profile
//	curl localhost:8080/metrics
//
// The /profile endpoint returns a done run's per-component simulation
// utilization breakdown (409 while the run is still queued or running);
// /metrics includes the aggregated simulation counters alongside the
// service's own.
//
// SIGTERM/SIGINT drains gracefully: new submissions get 503, in-flight
// simulations are canceled, and the process exits once the worker pool
// and HTTP listener have stopped (bounded by -shutdown-grace).
//
// With -data-dir the service is crash-safe: run state is journaled to
// <dir>/runs.wal (fsync policy set by -fsync), completed sweep points
// are persisted as they land, and a restart — graceful or kill -9 —
// replays the journal: cached reports come back, and runs that were in
// flight are requeued and resume past every persisted point. A corrupt
// journal tail (torn write, bit rot) is quarantined to runs.wal.quarantine
// and the service boots from the valid prefix. Without -data-dir the
// service is fully in-memory, exactly as before.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"piumagcn/internal/chaos"
	"piumagcn/internal/gossip"
	"piumagcn/internal/serve"
	"piumagcn/internal/store"
)

// peerFlag accumulates repeated -gossip-peer name=url flags.
type peerFlag []gossip.Peer

func (p *peerFlag) String() string {
	parts := make([]string, 0, len(*p))
	for _, peer := range *p {
		parts = append(parts, peer.Name+"="+peer.Addr)
	}
	return strings.Join(parts, ",")
}

func (p *peerFlag) Set(v string) error {
	name, addr, ok := strings.Cut(v, "=")
	if !ok || strings.TrimSpace(name) == "" || strings.TrimSpace(addr) == "" {
		return fmt.Errorf("want name=url, got %q", v)
	}
	*p = append(*p, gossip.Peer{Name: strings.TrimSpace(name), Addr: strings.TrimSuffix(strings.TrimSpace(addr), "/")})
	return nil
}

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		workers    = flag.Int("workers", 0, "simulation worker pool size (0 = half the CPUs)")
		queueDepth = flag.Int("queue-depth", 16, "bounded job queue depth (full queue returns 429)")
		cacheCap   = flag.Int("cache-cap", 128, "completed reports kept for cache hits")
		runTimeout = flag.Duration("run-timeout", 0, "per-run execution bound; expired runs report status \"timeout\" with a partial report (0 = unbounded)")
		maxRetries = flag.Int("max-retries", 1, "retries for transient-error run failures, resuming from the run checkpoint (negative disables)")
		retryWait  = flag.Duration("retry-backoff", 100*time.Millisecond, "base delay before the first retry (exponential with jitter; 0 = immediate)")
		grace      = flag.Duration("shutdown-grace", 30*time.Second, "drain deadline after SIGTERM")
		dataDir    = flag.String("data-dir", "", "journal run state here and recover it on restart (empty = in-memory only)")
		fsync      = flag.String("fsync", "always", "journal fsync policy: always, interval, or never")
		replica    = flag.String("replica", "", "replica name stamped into the X-Piuma-Replica response header (for piumagate fan-out)")
		chaosSpec  = flag.String("chaos", "", "server-side chaos schedule imposed on this replica's responses (chaos.Spec; windows match -replica or target=*)")
		gossipAddr = flag.String("gossip-addr", "", "this replica's own base URL advertised to gossip peers (required with -gossip-peer)")
		gossipTick = flag.Duration("gossip-interval", time.Second, "SWIM gossip protocol period")
		gossipSeed = flag.Int64("gossip-seed", 1, "seed for gossip probe-target shuffling (reproducibility)")
	)
	peers := peerFlag{}
	flag.Var(&peers, "gossip-peer", "gossip peer as name=url (repeatable; enables the SWIM membership agent)")
	flag.Parse()

	var st *store.Store
	if *dataDir != "" {
		policy, err := store.ParseSyncPolicy(*fsync)
		if err != nil {
			log.Fatalf("piumaserve: %v", err)
		}
		st, err = store.Open(*dataDir, policy)
		if err != nil {
			log.Fatalf("piumaserve: opening data dir: %v", err)
		}
		defer st.Close()
	} else if *fsync != "always" {
		log.Fatalf("piumaserve: -fsync has no effect without -data-dir")
	}

	srv := serve.New(serve.Config{
		Workers:      *workers,
		QueueDepth:   *queueDepth,
		CacheCap:     *cacheCap,
		RunTimeout:   *runTimeout,
		MaxRetries:   *maxRetries,
		RetryBackoff: *retryWait,
		Store:        st,
		Replica:      *replica,
	})
	if rec := srv.Recovery(); rec.Enabled {
		log.Printf("piumaserve: recovered %d run(s) from %s (%d requeued, %d cached reports, %d skipped; %d records, %d malformed, %d corrupt tail bytes quarantined)",
			rec.RestoredRuns, *dataDir, rec.RequeuedRuns, rec.CachedReports, rec.SkippedRuns,
			rec.Records, rec.Malformed, rec.QuarantinedBytes)
		if rec.QuarantinePath != "" {
			log.Printf("piumaserve: corrupt journal tail preserved at %s", rec.QuarantinePath)
		}
	}

	handler := srv.Handler()

	// SWIM membership agent: the replica probes its peers, refutes
	// suspicions about itself, and piggybacks its live queue depth on
	// every exchange (the gate's work-stealing signal). The gossip
	// endpoint mounts on an outer mux so it rides the same listener —
	// and, below, sits inside the chaos middleware, so a scheduled
	// outage blinds gossip exactly like the data path.
	var node *gossip.Node
	if len(peers) > 0 {
		if *replica == "" {
			log.Fatalf("piumaserve: -gossip-peer requires -replica (the node's member name)")
		}
		if *gossipAddr == "" {
			log.Fatalf("piumaserve: -gossip-peer requires -gossip-addr (this replica's advertised URL)")
		}
		var err error
		node, err = gossip.NewNode(gossip.Config{
			Name:       *replica,
			Addr:       strings.TrimSuffix(*gossipAddr, "/"),
			Peers:      peers,
			Transport:  &gossip.HTTPTransport{},
			Seed:       *gossipSeed,
			Interval:   *gossipTick,
			QueueDepth: srv.QueueDepth,
			OnEvent: func(e gossip.Event) {
				log.Printf("piumaserve: gossip: %s is %s (incarnation %d)", e.Node, e.State, e.Incarnation)
			},
		})
		if err != nil {
			log.Fatalf("piumaserve: gossip: %v", err)
		}
		outer := http.NewServeMux()
		outer.Handle("POST "+gossip.GossipPath, gossip.Handler(node))
		outer.Handle("/", handler)
		handler = outer
	}

	if *chaosSpec != "" {
		spec, err := chaos.Parse(*chaosSpec)
		if err != nil {
			log.Fatalf("piumaserve: -chaos: %v", err)
		}
		target := *replica
		if target == "" {
			target = chaos.TargetAll
		}
		inj := chaos.New(spec, nil)
		handler = inj.Middleware(target, handler)
		log.Printf("piumaserve: chaos schedule active (target %s): %s", target, spec.String())
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if node != nil {
		go node.Run(ctx)
		log.Printf("piumaserve: gossip agent %s up (%d peer(s), period %v)", *replica, len(peers), *gossipTick)
	}

	errc := make(chan error, 1)
	go func() {
		log.Printf("piumaserve listening on %s (%d experiments)", *addr, len(srv.Experiments()))
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		log.Fatalf("piumaserve: %v", err)
	case <-ctx.Done():
	}

	log.Printf("piumaserve: draining (grace %v)", *grace)
	drainCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "piumaserve: worker pool did not drain: %v\n", err)
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "piumaserve: http shutdown: %v\n", err)
	}
	if st != nil {
		sum := srv.DrainSummary()
		log.Printf("piumaserve: drained (%d queued run(s) drained, %d in-flight run(s) preserved for resume, %d record(s) journaled, journal synced at %d bytes)",
			sum.QueuedDrained, sum.PreservedRuns, sum.JournaledRecords, sum.JournalBytes)
	}
	log.Printf("piumaserve: stopped")
}
