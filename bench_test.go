package piumagcn_test

// One Go benchmark per paper artifact: BenchmarkTable1 and
// BenchmarkFig2..BenchmarkFig10 each regenerate their table/figure via
// the internal/bench runners (quick sweeps, simulator graphs capped at
// 2^14 edges so a full `go test -bench=.` stays in benchmark territory).
// Run `cmd/piumabench -experiment all` for full-fidelity sweeps.

import (
	"context"
	"testing"

	"piumagcn/internal/bench"
)

func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := bench.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	opts := bench.QuickOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := e.Run(context.Background(), opts)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Sections) == 0 {
			b.Fatalf("%s produced an empty report", id)
		}
	}
}

func BenchmarkTable1(b *testing.B) { runExperiment(b, "table1") }
func BenchmarkFig2(b *testing.B)   { runExperiment(b, "fig2") }
func BenchmarkFig3(b *testing.B)   { runExperiment(b, "fig3") }
func BenchmarkFig4(b *testing.B)   { runExperiment(b, "fig4") }
func BenchmarkFig5(b *testing.B)   { runExperiment(b, "fig5") }
func BenchmarkFig6(b *testing.B)   { runExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B)   { runExperiment(b, "fig7") }
func BenchmarkFig8(b *testing.B)   { runExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)   { runExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B)  { runExperiment(b, "fig10") }
