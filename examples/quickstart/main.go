// Quickstart: build a graph, run a real GCN forward pass, and estimate
// how the same workload would perform on Xeon, A100 and PIUMA.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"piumagcn/internal/core"
	"piumagcn/internal/graph"
	"piumagcn/internal/rmat"
	"piumagcn/internal/tensor"
)

func main() {
	// 1. Generate a small power-law graph and GCN-normalize it:
	//    Ã = D^{-1/2}(A+I)D^{-1/2}.
	raw, err := rmat.GenerateCSR(rmat.PowerLaw(10, 8, 42))
	if err != nil {
		log.Fatal(err)
	}
	a := graph.NormalizeGCN(raw)
	st := graph.ComputeStats(a)
	fmt.Printf("graph: |V|=%d |E|=%d avg-degree=%.1f\n", st.NumVertices, st.NumEdges, st.AvgDegree)

	// 2. Run a real 3-layer GCN forward pass (SpMM + dense kernels).
	w := core.Workload{Name: "quickstart", V: int64(a.NumVertices), E: a.NumEdges(),
		InDim: 32, OutDim: 10, Locality: 0}
	model := core.DefaultModel(64)
	features := tensor.NewRandom(a.NumVertices, w.InDim, 1, 1)
	weights := core.GlorotWeights(model, w, 2)
	out, err := core.Infer(a, features, weights, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("inference: output %dx%d, |out|_F = %.3f\n", out.Rows, out.Cols, tensor.FrobeniusNorm(out))

	// 3. Ask the platform models where this workload would run best.
	fmt.Println("\nestimated GCN inference time by platform:")
	for _, p := range []core.Platform{core.NewCPU(), core.NewGPU(), core.NewPIUMA()} {
		b, err := p.RunGCN(w, model)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s %.3g s  (SpMM %.0f%%, Dense %.0f%%)\n",
			p.Name(), b.Total(), 100*b.Share(core.PhaseSpMM), 100*b.Share(core.PhaseDense))
	}
}
