// Scaling: strong-scale the two simulated PIUMA SpMM kernels against
// the bandwidth-bound analytical model — a programmatic rendition of
// Figure 5 on a user-sized RMAT graph.
//
//	go run ./examples/scaling [-scale 12] [-k 128]
package main

import (
	"flag"
	"fmt"
	"log"

	"piumagcn/internal/amodel"
	"piumagcn/internal/piuma"
	"piumagcn/internal/piuma/kernels"
	"piumagcn/internal/rmat"
)

func main() {
	scale := flag.Int("scale", 12, "log2 vertex count")
	edgeFactor := flag.Int("edge-factor", 16, "edges per vertex")
	k := flag.Int("k", 128, "embedding dimension")
	flag.Parse()

	g, err := rmat.GenerateCSR(rmat.PowerLaw(*scale, *edgeFactor, 7))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("RMAT scale %d: |V|=%d |E|=%d, K=%d\n\n", *scale, g.NumVertices, g.NumEdges(), *k)
	fmt.Printf("%6s %12s %14s %16s\n", "cores", "model GF", "dma GF (eff)", "loop GF (eff)")

	for _, cores := range []int{1, 2, 4, 8, 16, 32} {
		cfg := piuma.DefaultConfig()
		cfg.Cores = cores
		prob := amodel.Problem{V: int64(g.NumVertices), E: g.NumEdges(), K: int64(*k), W: amodel.DefaultWidths()}
		bw := cfg.AggregateBandwidth()
		model, err := prob.GFLOPS(amodel.Bandwidth{Read: bw, Write: bw})
		if err != nil {
			log.Fatal(err)
		}
		dma, err := kernels.Run(kernels.KindDMA, cfg, g, *k)
		if err != nil {
			log.Fatal(err)
		}
		lu, err := kernels.Run(kernels.KindLoopUnrolled, cfg, g, *k)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%6d %12.1f %8.1f (%3.0f%%) %9.1f (%3.0f%%)\n",
			cores, model, dma.GFLOPS, 100*dma.GFLOPS/model, lu.GFLOPS, 100*lu.GFLOPS/model)
	}
	fmt.Println("\nThe DMA kernel tracks the model; the loop-unrolled kernel collapses")
	fmt.Println("once remote NNZ-read latency dominates (Section IV-B of the paper).")
}
