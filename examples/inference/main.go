// Inference: an end-to-end functional GCN on a synthetic citation-style
// graph — planted community structure, real normalization, real SpMM
// and dense kernels — demonstrating that aggregation actually smooths
// features toward community consensus (the mechanism GCN accuracy rests
// on) and reporting kernel wall-times on this host.
//
//	go run ./examples/inference
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"piumagcn/internal/core"
	"piumagcn/internal/graph"
	"piumagcn/internal/spmm"
	"piumagcn/internal/tensor"
)

const (
	communities  = 4
	perCommunity = 500
	inDim        = 16
	hidden       = 32
)

func main() {
	a, labels := plantedGraph(1234)
	n := a.NumVertices
	fmt.Printf("planted graph: %d vertices, %d edges, %d communities\n", n, a.NumEdges(), communities)

	// Features: noisy one-hot-ish community signatures.
	rng := rand.New(rand.NewSource(99))
	x := tensor.New(n, inDim)
	for v := 0; v < n; v++ {
		for j := 0; j < inDim; j++ {
			x.Set(v, j, rng.NormFloat64()*2.0) // heavy noise
		}
		x.Set(v, labels[v], x.At(v, labels[v])+1.0) // weak signal
	}

	w := core.Workload{Name: "planted", V: int64(n), E: a.NumEdges(),
		InDim: inDim, OutDim: communities, Locality: 0}
	model := core.DefaultModel(hidden)
	weights := core.GlorotWeights(model, w, 5)

	// Raw-feature vs GCN-smoothed nearest-signature accuracy.
	base := accuracy(x, labels)
	start := time.Now()
	out, err := core.Infer(a, x, weights, 0)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	// One aggregation pass over the raw features isolates the
	// smoothing effect from the random weights.
	smoothed, err := spmm.VertexParallel(a, x, 0)
	if err != nil {
		log.Fatal(err)
	}
	smoothed, err = spmm.VertexParallel(a, smoothed, 0)
	if err != nil {
		log.Fatal(err)
	}
	agg := accuracy(smoothed, labels)

	fmt.Printf("nearest-signature accuracy on raw features:       %.1f%%\n", 100*base)
	fmt.Printf("nearest-signature accuracy after 2x aggregation:  %.1f%%\n", 100*agg)
	fmt.Printf("3-layer GCN forward pass (untrained weights):     output %dx%d in %v\n",
		out.Rows, out.Cols, elapsed.Round(time.Microsecond))
	if agg <= base {
		log.Fatal("aggregation failed to smooth features toward community consensus")
	}
	fmt.Println("\naggregation (SpMM) pulls every vertex toward its community mean —")
	fmt.Println("exactly the kernel whose scalability the paper characterizes.")
}

// plantedGraph builds a stochastic block model: dense within
// communities, sparse across.
func plantedGraph(seed int64) (*graph.CSR, []int) {
	rng := rand.New(rand.NewSource(seed))
	n := communities * perCommunity
	labels := make([]int, n)
	for v := range labels {
		labels[v] = v / perCommunity
	}
	var edges []graph.Edge
	for v := 0; v < n; v++ {
		for d := 0; d < 12; d++ {
			var u int
			if rng.Float64() < 0.9 { // intra-community
				u = labels[v]*perCommunity + rng.Intn(perCommunity)
			} else {
				u = rng.Intn(n)
			}
			edges = append(edges,
				graph.Edge{Src: int32(v), Dst: int32(u), Weight: 1},
				graph.Edge{Src: int32(u), Dst: int32(v), Weight: 1})
		}
	}
	raw, err := graph.FromCOO(&graph.COO{NumVertices: n, Edges: edges})
	if err != nil {
		log.Fatal(err)
	}
	return graph.NormalizeGCN(raw), labels
}

// accuracy classifies each vertex by the community signature nearest to
// its feature row (cosine against per-community mean rows).
func accuracy(h *tensor.Matrix, labels []int) float64 {
	means := make([]*tensor.Matrix, communities)
	counts := make([]int, communities)
	for c := range means {
		means[c] = tensor.New(1, h.Cols)
	}
	for v := 0; v < h.Rows; v++ {
		c := labels[v]
		counts[c]++
		row := h.Row(v)
		for j, val := range row {
			means[c].Data[j] += val
		}
	}
	for c := range means {
		for j := range means[c].Data {
			means[c].Data[j] /= float64(counts[c])
		}
	}
	correct := 0
	for v := 0; v < h.Rows; v++ {
		best, bestDot := -1, 0.0
		row := h.Row(v)
		for c := range means {
			dot := 0.0
			for j, val := range row {
				dot += val * means[c].Data[j]
			}
			if best == -1 || dot > bestDot {
				best, bestDot = c, dot
			}
		}
		if best == labels[v] {
			correct++
		}
	}
	return float64(correct) / float64(h.Rows)
}
