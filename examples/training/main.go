// Training: full-batch GCN training on a planted-community graph with
// the library's exact backprop (verified against finite differences in
// the test suite), plus a comparison of full-neighbourhood vs sampled
// inference (graphSAGE-style) using the trained weights — the Section
// VI workloads.
//
//	go run ./examples/training
package main

import (
	"fmt"
	"log"
	"math/rand"

	"piumagcn/internal/cluster"
	"piumagcn/internal/core"
	"piumagcn/internal/graph"
	"piumagcn/internal/sampling"
	"piumagcn/internal/tensor"
)

const (
	communities  = 3
	perCommunity = 120
	inDim        = 10
	hidden       = 16
	epochs       = 60
)

func main() {
	g, labels := plantedGraph(7)
	n := g.NumVertices
	fmt.Printf("graph: %d vertices, %d edges, %d planted communities\n", n, g.NumEdges(), communities)

	// Features: noisy community signals.
	rng := rand.New(rand.NewSource(3))
	x := tensor.New(n, inDim)
	for v := 0; v < n; v++ {
		for j := 0; j < inDim; j++ {
			x.Set(v, j, rng.NormFloat64())
		}
		x.Set(v, labels[v], x.At(v, labels[v])+0.8)
	}

	w := core.Workload{Name: "planted", V: int64(n), E: g.NumEdges(),
		InDim: inDim, OutDim: communities, Locality: 0}
	model := core.Model{Layers: 2, Hidden: hidden}
	weights := core.GlorotWeights(model, w, 4)

	trainer, err := core.NewTrainer(g, x, labels, weights, 0.8)
	if err != nil {
		log.Fatal(err)
	}
	acc0, err := trainer.Accuracy()
	if err != nil {
		log.Fatal(err)
	}
	losses, err := trainer.Fit(epochs)
	if err != nil {
		log.Fatal(err)
	}
	acc1, err := trainer.Accuracy()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("training: loss %.4f -> %.4f over %d epochs\n", losses[0], losses[len(losses)-1], epochs)
	fmt.Printf("accuracy: %.1f%% before, %.1f%% after\n", 100*acc0, 100*acc1)

	// Sampled inference with the trained weights: fan-out 5 vs exact.
	seeds := []int32{0, 40, 130, 260, 359}
	batch, err := sampling.BuildBatch(sampling.Uniform{G: g}, seeds, []int{5, 5}, 11)
	if err != nil {
		log.Fatal(err)
	}
	sampled, err := sampling.InferBatch(batch, x, trainer.Weights)
	if err != nil {
		log.Fatal(err)
	}
	exact, err := core.Infer(g, x, trainer.Weights, 0)
	if err != nil {
		log.Fatal(err)
	}
	agree := 0
	for i, v := range seeds {
		if argmax(sampled.Row(i)) == argmax(exact.Row(int(v))) {
			agree++
		}
	}
	st := sampling.ComputeStats(batch)
	fmt.Printf("sampled inference (fan-out 5): %d/%d seed predictions match exact; batch touched %d edges vs %d in the graph\n",
		agree, len(seeds), st.SampledEdges, g.NumEdges())

	// Louvain clustering of the same graph (Cluster-GCN's batching
	// primitive): should rediscover the planted communities.
	res, err := cluster.Louvain(g, cluster.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("louvain: %d communities, modularity %.3f (planted: %d)\n",
		res.Communities, res.Modularity, communities)
}

func plantedGraph(seed int64) (*graph.CSR, []int) {
	rng := rand.New(rand.NewSource(seed))
	n := communities * perCommunity
	labels := make([]int, n)
	for v := range labels {
		labels[v] = v / perCommunity
	}
	var edges []graph.Edge
	for v := 0; v < n; v++ {
		for d := 0; d < 7; d++ {
			var u int
			if rng.Float64() < 0.88 {
				u = labels[v]*perCommunity + rng.Intn(perCommunity)
			} else {
				u = rng.Intn(n)
			}
			edges = append(edges,
				graph.Edge{Src: int32(v), Dst: int32(u), Weight: 1},
				graph.Edge{Src: int32(u), Dst: int32(v), Weight: 1})
		}
	}
	raw, err := graph.FromCOO(&graph.COO{NumVertices: n, Edges: edges})
	if err != nil {
		log.Fatal(err)
	}
	return graph.NormalizeGCN(raw), labels
}

func argmax(row []float64) int {
	best := 0
	for j, v := range row {
		if v > row[best] {
			best = j
		}
	}
	return best
}
