// Characterize: place a workload on the paper's Figure 2 plane — the
// SpMM-share contour over graph scale and density — to estimate how much
// it would benefit from a graph accelerator like PIUMA. This is the
// paper's per-layer estimation methodology (Section III-B) applied to
// the OGB suite plus a user-defined workload.
//
//	go run ./examples/characterize [-vertices 500000] [-avg-degree 30]
package main

import (
	"flag"
	"fmt"
	"log"

	"piumagcn/internal/core"
	"piumagcn/internal/ogb"
)

func main() {
	vertices := flag.Int64("vertices", 500_000, "workload vertex count")
	avgDegree := flag.Float64("avg-degree", 30, "workload average degree")
	k := flag.Int("k", 256, "embedding dimension")
	flag.Parse()

	cpu := core.NewCPU()
	grid, err := core.ComputeContourGrid(cpu,
		[]int{10, 12, 14, 16, 18, 20, 22, 24, 26},
		[]float64{1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2}, *k)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("SpMM share of a K=%d GCN layer on CPU (the Figure 2 plane):\n\n", *k)
	fmt.Printf("%-12s %12s %10s %12s  %s\n", "workload", "|V|", "density", "SpMM share", "verdict")
	show := func(name string, v int64, density float64) {
		share := grid.ShareAt(v, density)
		verdict := "modest PIUMA benefit"
		if share > 0.6 {
			verdict = "strong PIUMA benefit"
		}
		if share > 0.85 {
			verdict = "ideal PIUMA workload"
		}
		fmt.Printf("%-12s %12d %10.2e %11.0f%%  %s\n", name, v, density, 100*share, verdict)
	}
	for _, d := range ogb.Catalog() {
		show(d.Name, d.V, d.Density())
	}
	density := *avgDegree / float64(*vertices)
	fmt.Println()
	show("(yours)", *vertices, density)
}
