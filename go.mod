module piumagcn

go 1.24
