// Package piumagcn is a from-scratch Go reproduction of "Characterizing
// the Scalability of Graph Convolutional Networks on Intel PIUMA"
// (Adiletta et al., ISPASS 2023).
//
// The library implements the paper's full system stack:
//
//   - internal/graph, internal/rmat, internal/ogb: the sparse-matrix
//     substrate, the SNAP-style RMAT generators and a synthetic Open
//     Graph Benchmark catalogue (Table I).
//   - internal/spmm, internal/tensor: functional SpMM and dense-MM
//     kernels (Algorithm 1/2 numerics) used by the runnable GCN.
//   - internal/sim, internal/piuma, internal/piuma/kernels: a
//     discrete-event PIUMA machine model — MTP threads with one
//     in-flight memory operation, per-core DRAM slices, a distributed
//     global address space, per-core DMA engines — running the paper's
//     loop-unrolled and DMA SpMM kernels (Section IV).
//   - internal/amodel: the bandwidth-bound analytical model
//     (Equations 1-5).
//   - internal/xeon, internal/gpu, internal/piuma/model: calibrated
//     performance models of the Xeon 8380 node, the A100-40GB and the
//     PIUMA node (Sections III and V).
//   - internal/core: the characterization layer — GCN models,
//     execution-time breakdowns, platform comparison, the Figure 2
//     contour methodology, and a real forward-inference path.
//   - internal/bench + cmd/piumabench: runners that regenerate Table I
//     and Figures 2-10 (plus the Section VI/VII extension studies).
//   - internal/serve + cmd/piumaserve: the characterization service —
//     a JSON HTTP API over a bounded job queue and worker pool with
//     request deduplication and a content-addressed result cache.
//
// See README.md for a tour and EXPERIMENTS.md for the paper-vs-measured
// index.
package piumagcn
