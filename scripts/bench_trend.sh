#!/usr/bin/env bash
# Benchmark trend tracker: run the repo's microbenchmarks and append
# one JSON record per invocation to BENCH_TREND.json (JSON lines:
# commit, date, go version, ns/op + allocs/op per benchmark). The file
# is committed, so performance across PRs diffs in review like any
# other artifact.
#
# Usage: scripts/bench_trend.sh [packages...]
#        (default: the load-generator, store, gossip-codec and
#        gate-submit hot paths)
set -euo pipefail

cd "$(dirname "$0")/.."
OUT="BENCH_TREND.json"
PKGS=("$@")
if [ ${#PKGS[@]} -eq 0 ]; then
    PKGS=(./internal/workload/ ./internal/store/ ./internal/gossip/ ./internal/gate/ ./internal/lint/)
fi

COMMIT=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
DATE=$(date -u +%Y-%m-%dT%H:%M:%SZ)
GOVER=$(go env GOVERSION)

RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT
go test -run '^$' -bench . -benchmem -benchtime 0.5s "${PKGS[@]}" >"$RAW"

# Fold `BenchmarkName-N  iters  12.3 ns/op  4 B/op  5 allocs/op` lines
# into one JSON object, preserving benchmark order.
awk -v commit="$COMMIT" -v date="$DATE" -v gover="$GOVER" '
/^Benchmark/ {
    name = $1
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op") ns = $(i - 1)
        if ($i == "B/op") bytes = $(i - 1)
        if ($i == "allocs/op") allocs = $(i - 1)
    }
    if (ns == "") next
    entry = "\"" name "\":{\"ns_op\":" ns
    if (bytes != "") entry = entry ",\"b_op\":" bytes
    if (allocs != "") entry = entry ",\"allocs_op\":" allocs
    entry = entry "}"
    benches = benches (benches == "" ? "" : ",") entry
    count++
}
END {
    if (count == 0) {
        print "bench_trend: no benchmark results parsed" > "/dev/stderr"
        exit 1
    }
    printf "{\"commit\":\"%s\",\"date\":\"%s\",\"go\":\"%s\",\"benchmarks\":{%s}}\n",
        commit, date, gover, benches
}' "$RAW" >>"$OUT"

echo "appended $(tail -n1 "$OUT" | cut -c1-120)... to $OUT"
