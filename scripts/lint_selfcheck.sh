#!/usr/bin/env bash
# Self-check for the piumalint analyzers: run each analyzer over its
# fixture package under internal/lint/testdata/src/<analyzer> and diff
# the findings against the committed golden (expected.txt). A silently
# disabled or weakened analyzer produces an empty or shrunken diff and
# fails here — the same invariant the golden tests enforce in-process,
# but exercised through the real CLI binary and exit-code contract.
#
# Usage: scripts/lint_selfcheck.sh
set -euo pipefail

cd "$(dirname "$0")/.."

BIN="$(mktemp -d)/piumalint"
trap 'rm -rf "$(dirname "$BIN")"' EXIT
go build -o "$BIN" ./cmd/piumalint

fail=0
for dir in internal/lint/testdata/src/*/; do
  name="$(basename "$dir")"
  golden="$dir/expected.txt"
  if [[ ! -f "$golden" ]]; then
    echo "FAIL $name: no golden at $golden" >&2
    fail=1
    continue
  fi
  # Findings are expected, so the tool exits 1; only exit 2 (load
  # error) is fatal. Positions are absolute under the fixture dir —
  # strip that prefix so output matches the committed golden.
  absdir="$(cd "$dir" && pwd)"
  set +e
  raw="$(cd "$absdir" && "$BIN" -analyzer "$name" .)"
  status=$?
  set -e
  got="$(printf '%s\n' "$raw" | sed "s#$absdir/##g")"
  if [[ $status -ne 0 && $status -ne 1 ]]; then
    echo "FAIL $name: piumalint exited $status" >&2
    fail=1
    continue
  fi
  if ! diff -u "$golden" <(printf '%s\n' "$got"); then
    echo "FAIL $name: findings drifted from golden" >&2
    fail=1
  else
    echo "ok   $name ($(wc -l < "$golden") findings)"
  fi
done

# Warm-cache replay: with -cache, a second run over the same content
# answers from the content-hash result cache alone — its diagnostics
# must be byte-identical to the cold run's, or the cache is lying.
cachedir="$(mktemp -d)"
trap 'rm -rf "$(dirname "$BIN")" "$cachedir"' EXIT
for dir in internal/lint/testdata/src/*/; do
  name="$(basename "$dir")"
  absdir="$(cd "$dir" && pwd)"
  set +e
  cold="$(cd "$absdir" && "$BIN" -cache "$cachedir" -analyzer "$name" .)"
  warm="$(cd "$absdir" && "$BIN" -cache "$cachedir" -analyzer "$name" .)"
  set -e
  if [[ "$cold" != "$warm" ]]; then
    echo "FAIL $name: warm cache run differs from cold run" >&2
    diff <(printf '%s\n' "$cold") <(printf '%s\n' "$warm") >&2 || true
    fail=1
  else
    echo "ok   $name warm cache is byte-identical"
  fi
done

# The repo itself must be clean: every true positive is either fixed
# or carries a reviewed //lint:ignore.
if ! "$BIN" ./...; then
  echo "FAIL piumalint found new issues in the tree" >&2
  fail=1
else
  echo "ok   repo tree is lint-clean"
fi

exit $fail
