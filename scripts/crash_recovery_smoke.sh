#!/usr/bin/env bash
# Crash-recovery smoke test: boot piumaserve with a data dir, submit an
# ext-degraded sweep, kill -9 the process mid-run, restart it on the
# same data dir, and require that the run finishes with at least one
# sweep point reused from the journal instead of re-simulated.
#
# Usage: scripts/crash_recovery_smoke.sh [addr]
set -euo pipefail

ADDR="${1:-127.0.0.1:8091}"
BASE="http://$ADDR"
TMP="$(mktemp -d)"
DATA="$TMP/data"
LOG="$TMP/serve.log"
PID=""

cleanup() {
    [ -n "$PID" ] && kill -9 "$PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT

fail() {
    echo "FAIL: $*" >&2
    echo "--- server log ---" >&2
    cat "$LOG" >&2 || true
    exit 1
}

# json_field <field> extracts a scalar field from the JSON on stdin.
json_field() {
    sed -n "s/.*\"$1\"[[:space:]]*:[[:space:]]*\"\{0,1\}\([^\",}]*\)\"\{0,1\}.*/\1/p" | head -n1
}

start_server() {
    "$BIN" -addr "$ADDR" -workers 1 -data-dir "$DATA" -fsync always >>"$LOG" 2>&1 &
    PID=$!
    for _ in $(seq 1 100); do
        if curl -sf "$BASE/healthz" >/dev/null 2>&1; then
            return 0
        fi
        kill -0 "$PID" 2>/dev/null || fail "server exited during startup"
        sleep 0.2
    done
    fail "server never became healthy on $ADDR"
}

# A sweep sized so each severity point takes seconds: wide kill window,
# and an uninterrupted rerun would be expensive enough that reuse is
# observable.
SUBMIT_BODY='{"experiment":"ext-degraded","options":{"max_sim_edges":2097152,"seed":7}}'

# kill -9 must hit the server itself, not a `go run` wrapper, so build
# the real binary first.
BIN="$TMP/piumaserve"
go build -o "$BIN" ./cmd/piumaserve

echo "== boot 1: submit and kill -9 mid-sweep =="
start_server
RUN_ID=$(curl -sf -X POST "$BASE/v1/runs" -d "$SUBMIT_BODY" | json_field id)
[ -n "$RUN_ID" ] || fail "submission returned no run id"
echo "run: $RUN_ID"

# Wait for the first checkpoint point to hit the journal, then kill.
KILLED=0
for _ in $(seq 1 600); do
    BODY=$(curl -sf "$BASE/v1/runs/$RUN_ID") || fail "polling run"
    STATUS=$(echo "$BODY" | json_field status)
    POINTS=$(echo "$BODY" | json_field checkpoint_points)
    [ "$STATUS" = done ] && fail "run finished before the kill; raise max_sim_edges"
    if [ -n "$POINTS" ] && [ "$POINTS" -ge 1 ]; then
        kill -9 "$PID"
        wait "$PID" 2>/dev/null || true
        PID=""
        KILLED=1
        echo "killed -9 after $POINTS checkpointed point(s)"
        break
    fi
    sleep 0.1
done
[ "$KILLED" = 1 ] || fail "run never checkpointed a sweep point"

echo "== boot 2: recover and resume =="
start_server
grep -q "recovered 1 run" "$LOG" || fail "no recovery log line after restart"

for _ in $(seq 1 1200); do
    BODY=$(curl -sf "$BASE/v1/runs/$RUN_ID") || fail "run $RUN_ID unknown after restart"
    STATUS=$(echo "$BODY" | json_field status)
    case "$STATUS" in
    done)
        REUSED=$(echo "$BODY" | json_field reused_points)
        [ -n "$REUSED" ] && [ "$REUSED" -ge 1 ] ||
            fail "run finished with reused_points=${REUSED:-0}, want >= 1"
        echo "PASS: run $RUN_ID done after crash, $REUSED point(s) reused from the journal"
        exit 0
        ;;
    failed | canceled | timeout)
        fail "recovered run ended $STATUS: $(echo "$BODY" | json_field error)"
        ;;
    esac
    sleep 0.1
done
fail "recovered run never finished"
