#!/usr/bin/env bash
# Chaos smoke test: two piumaserve replicas behind piumagate with a
# scheduled fault timeline on the gate's fan-out transport — a
# connection-reset burst against b0 followed by a blackhole partition
# of b1 — while the open-loop "smoke" scenario drives the cluster.
# The invariant: every run the cluster ACCEPTED reaches a terminal
# state and no run is duplicated on a replica (failover resubmission
# is dedup'd by the content-addressed run ID). Afterwards both
# replicas must recover: probes restore registry health and every
# circuit breaker returns to closed.
#
# Usage: scripts/chaos_smoke.sh
set -euo pipefail

A_ADDR="127.0.0.1:8097"
B_ADDR="127.0.0.1:8098"
G_ADDR="127.0.0.1:8099"
GBASE="http://$G_ADDR"
TMP="$(mktemp -d)"
REPORT="$TMP/report.json"
APID=""
BPID=""
GPID=""

cleanup() {
    for pid in "$APID" "$BPID" "$GPID"; do
        [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    done
    rm -rf "$TMP"
}
trap cleanup EXIT

fail() {
    echo "FAIL: $*" >&2
    for log in a b gate; do
        echo "--- $log log ---" >&2
        cat "$TMP/$log.log" >&2 || true
    done
    exit 1
}

json_int() {
    sed -n "s/.*\"$1\"[[:space:]]*:[[:space:]]*\([0-9][0-9]*\).*/\1/p" | head -n1
}

SERVE="$TMP/piumaserve"
GATE="$TMP/piumagate"
LOAD="$TMP/piumaload"
go build -o "$SERVE" ./cmd/piumaserve
go build -o "$GATE" ./cmd/piumagate
go build -o "$LOAD" ./cmd/piumaload

wait_healthy() {
    local base=$1 pid=$2 what=$3
    for _ in $(seq 1 100); do
        if curl -sf "$base/healthz" >/dev/null 2>&1; then
            return 0
        fi
        kill -0 "$pid" 2>/dev/null || fail "$what exited during startup"
        sleep 0.2
    done
    fail "$what never became healthy on $base"
}

"$SERVE" -addr "$A_ADDR" -workers 2 -queue-depth 64 -replica b0 >"$TMP/a.log" 2>&1 &
APID=$!
"$SERVE" -addr "$B_ADDR" -workers 2 -queue-depth 64 -replica b1 >"$TMP/b.log" 2>&1 &
BPID=$!
wait_healthy "http://$A_ADDR" "$APID" "replica b0"
wait_healthy "http://$B_ADDR" "$BPID" "replica b1"

# The chaos epoch is pinned when the gate starts, so the windows are
# placed far enough out that the load run overlaps them: resets tear
# down b0 forwards at 1.0-1.8s, then b1 is partitioned at 2.0-2.6s.
CHAOS='seed=7;fault=reset,target=b0,at=1s,for=800ms,rate=0.5;fault=blackhole,target=b1,at=2s,for=600ms'
"$GATE" -addr "$G_ADDR" -backends "http://$A_ADDR,http://$B_ADDR" \
    -policy cache-affinity -probe-interval 150ms -markdown-after 2 \
    -breaker-threshold 2 -breaker-cooldown 500ms -hedge-delay 50ms \
    -chaos "$CHAOS" >"$TMP/gate.log" 2>&1 &
GPID=$!
wait_healthy "$GBASE" "$GPID" "piumagate"
grep -q "chaos schedule active" "$TMP/gate.log" || fail "gate did not arm the chaos schedule"

echo "== drive the smoke scenario through the gate under the chaos schedule =="
# Exit 2 (request errors) is tolerated: while BOTH replicas are inside
# a fault window a submission can surface a 5xx — the invariant under
# test is that accepted runs are never lost or duplicated, not that
# chaos is invisible. Exit 1 (transport/usage failure) is not.
set +e
"$LOAD" -target "$GBASE" -scenario smoke -json >"$REPORT"
RC=$?
set -e
[ "$RC" = 0 ] || [ "$RC" = 2 ] || fail "piumaload exited $RC under chaos"

REQUESTS=$(json_int requests <"$REPORT")
COMPLETED=$(json_int completed <"$REPORT")
ERRORS=$(json_int errors <"$REPORT")
BACKPRESSURE=$(json_int backpressure <"$REPORT")
[ -n "$REQUESTS" ] && [ "$REQUESTS" -ge 1 ] || fail "report issued no requests: $(cat "$REPORT")"
[ -n "$COMPLETED" ] && [ "$COMPLETED" -ge 1 ] || fail "chaos ate every request: $(cat "$REPORT")"
# wait=true responses only arrive once a run is terminal, so every
# completed request IS an accepted run that reached a terminal state;
# requests + none lost: completed + backpressure + errors covers the
# whole stream.
[ "$((COMPLETED + BACKPRESSURE + ${ERRORS:-0}))" = "$REQUESTS" ] \
    || fail "$COMPLETED completed + $BACKPRESSURE backpressured + ${ERRORS:-0} errored != $REQUESTS issued: $(cat "$REPORT")"
echo "chaos run: $COMPLETED/$REQUESTS completed, $BACKPRESSURE backpressured, ${ERRORS:-0} errored"

# Give probes time to restore both replicas after the last window.
sleep 2
curl -sf "$GBASE/healthz" >/dev/null || fail "gate unhealthy after the chaos schedule expired"

echo "== every accepted run terminal, zero duplicates per replica =="
LISTING=$(curl -s "$GBASE/v1/runs")
if echo "$LISTING" | grep -q '"status": "queued"\|"status": "running"'; then
    fail "non-terminal run left after the chaos run settled: $LISTING"
fi
for base in "http://$A_ADDR" "http://$B_ADDR"; do
    IDS=$(curl -s "$base/v1/runs" | sed -n 's/.*"id"[[:space:]]*:[[:space:]]*"\(r-[0-9a-f]*\)".*/\1/p')
    DUPES=$(echo "$IDS" | sort | uniq -d)
    [ -z "$DUPES" ] || fail "replica $base executed a run twice: $DUPES"
done
echo "no replica holds a duplicated run"

echo "== replicas and breakers recovered =="
BACKENDS=$(curl -s "$GBASE/v1/gate/backends")
echo "$BACKENDS" | grep -c '"healthy": true' | grep -q '^2$' \
    || fail "both replicas should have recovered: $BACKENDS"
if echo "$BACKENDS" | grep -q '"breaker": "open"'; then
    fail "a circuit is still open after the schedule expired: $BACKENDS"
fi

echo "== gate resilience metrics present =="
METRICS=$(curl -s "$GBASE/metrics")
for family in piumagate_breaker_state piumagate_breaker_transitions_total \
    piumagate_hedged_reads_total piumagate_deadline_exhausted_total; do
    echo "$METRICS" | grep -q "$family" || fail "gate metrics missing $family"
done

echo "PASS: chaos schedule ran, every accepted run terminal, zero duplicates, cluster recovered"
