#!/usr/bin/env bash
# Cluster smoke test: two piumaserve replicas behind piumagate. Drive
# the ~2s "smoke" scenario through the gate while kill -9'ing replica
# b0 mid-run, and require every accepted run to reach a terminal state
# with zero errors — mid-flight submissions must fail over to b1
# (safe: run IDs are content addresses, so resubmission is at worst a
# dedup hit, never a duplicate side effect). Then drive the closed-loop
# scenario through the surviving replica and check the gate's
# aggregated /metrics and backend introspection.
#
# Usage: scripts/cluster_smoke.sh
set -euo pipefail

A_ADDR="127.0.0.1:8094"
B_ADDR="127.0.0.1:8095"
G_ADDR="127.0.0.1:8096"
GBASE="http://$G_ADDR"
TMP="$(mktemp -d)"
REPORT="$TMP/report.json"
APID=""
BPID=""
GPID=""

cleanup() {
    for pid in "$APID" "$BPID" "$GPID"; do
        [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    done
    rm -rf "$TMP"
}
trap cleanup EXIT

fail() {
    echo "FAIL: $*" >&2
    for log in a b gate; do
        echo "--- $log log ---" >&2
        cat "$TMP/$log.log" >&2 || true
    done
    exit 1
}

json_int() {
    sed -n "s/.*\"$1\"[[:space:]]*:[[:space:]]*\([0-9][0-9]*\).*/\1/p" | head -n1
}

SERVE="$TMP/piumaserve"
GATE="$TMP/piumagate"
LOAD="$TMP/piumaload"
go build -o "$SERVE" ./cmd/piumaserve
go build -o "$GATE" ./cmd/piumagate
go build -o "$LOAD" ./cmd/piumaload

wait_healthy() {
    local base=$1 pid=$2 what=$3
    for _ in $(seq 1 100); do
        if curl -sf "$base/healthz" >/dev/null 2>&1; then
            return 0
        fi
        kill -0 "$pid" 2>/dev/null || fail "$what exited during startup"
        sleep 0.2
    done
    fail "$what never became healthy on $base"
}

"$SERVE" -addr "$A_ADDR" -workers 2 -queue-depth 64 -replica b0 >"$TMP/a.log" 2>&1 &
APID=$!
"$SERVE" -addr "$B_ADDR" -workers 2 -queue-depth 64 -replica b1 >"$TMP/b.log" 2>&1 &
BPID=$!
wait_healthy "http://$A_ADDR" "$APID" "replica b0"
wait_healthy "http://$B_ADDR" "$BPID" "replica b1"

"$GATE" -addr "$G_ADDR" -backends "http://$A_ADDR,http://$B_ADDR" \
    -policy cache-affinity -probe-interval 250ms >"$TMP/gate.log" 2>&1 &
GPID=$!
wait_healthy "$GBASE" "$GPID" "piumagate"

echo "== drive the smoke scenario through the gate, kill -9 replica b0 mid-run =="
( sleep 0.7; kill -9 "$APID" 2>/dev/null ) &
KILLER=$!
"$LOAD" -target "$GBASE" -scenario smoke -json >"$REPORT" \
    || fail "piumaload through the gate exited non-zero"
wait "$KILLER" || true
APID=""

REQUESTS=$(json_int requests <"$REPORT")
COMPLETED=$(json_int completed <"$REPORT")
ERRORS=$(json_int errors <"$REPORT")
BACKPRESSURE=$(json_int backpressure <"$REPORT")
[ -n "$REQUESTS" ] && [ "$REQUESTS" -ge 1 ] || fail "report issued no requests: $(cat "$REPORT")"
[ "${ERRORS:-1}" = 0 ] || fail "report shows $ERRORS error(s) — a mid-run backend death must fail over, not surface: $(cat "$REPORT")"
# wait=true responses only arrive once a run is terminal, so every
# non-backpressured request completing IS the every-accepted-run-
# reaches-a-terminal-state check.
[ "$((COMPLETED + BACKPRESSURE))" = "$REQUESTS" ] \
    || fail "$COMPLETED completed + $BACKPRESSURE backpressured != $REQUESTS issued: $(cat "$REPORT")"
echo "kill -9 run clean: $COMPLETED/$REQUESTS completed, $BACKPRESSURE backpressured, 0 errors"

# The gate must have noticed the corpse and stayed up on one replica.
sleep 0.6
curl -sf "$GBASE/healthz" >/dev/null || fail "gate unhealthy with one live replica"
BACKENDS=$(curl -s "$GBASE/v1/gate/backends")
echo "$BACKENDS" | grep -A2 '"name": "b0"' | grep -q '"healthy": false' \
    || fail "b0 should be marked down: $BACKENDS"
echo "$BACKENDS" | grep -A2 '"name": "b1"' | grep -q '"healthy": true' \
    || fail "b1 should still be healthy: $BACKENDS"

# No accepted run may be stuck: the surviving replica's cluster listing
# must hold only terminal runs (failover resubmissions are dedup'd by
# their content-addressed IDs, so nothing runs twice).
LISTING=$(curl -s "$GBASE/v1/runs")
if echo "$LISTING" | grep -q '"status": "queued"\|"status": "running"'; then
    fail "non-terminal run left after the load finished: $LISTING"
fi

echo "== drive the closed-loop scenario through the surviving replica =="
"$LOAD" -target "$GBASE" -scenario closed -json -fail-on-backpressure >"$REPORT" \
    || fail "closed-loop run exited non-zero"
CREQUESTS=$(json_int requests <"$REPORT")
CCOMPLETED=$(json_int completed <"$REPORT")
CERRORS=$(json_int errors <"$REPORT")
[ -n "$CREQUESTS" ] && [ "$CREQUESTS" -ge 1 ] || fail "closed report issued no requests: $(cat "$REPORT")"
[ "$CCOMPLETED" = "$CREQUESTS" ] || fail "closed run: $CCOMPLETED of $CREQUESTS completed: $(cat "$REPORT")"
[ "${CERRORS:-1}" = 0 ] || fail "closed run shows $CERRORS error(s): $(cat "$REPORT")"
echo "closed-loop run clean: $CCOMPLETED/$CREQUESTS completed"

echo "== check the aggregated gate metrics =="
METRICS=$(curl -s "$GBASE/metrics")
echo "$METRICS" | grep -q 'piumagate_routed_total{policy="cache-affinity",backend="b' \
    || fail "gate metrics missing per-backend routing counters"
echo "$METRICS" | grep -q 'piumagate_backend_up{backend="b1"} 1' \
    || fail "gate metrics missing scraped backend_up for b1"
echo "$METRICS" | grep -q 'piumagate_backend_healthy{backend="b0"} 0' \
    || fail "gate metrics should show b0 unhealthy"

echo "PASS: cluster survived kill -9 with every accepted run terminal ($COMPLETED open + $CCOMPLETED closed runs)"
