#!/usr/bin/env bash
# Partition smoke test: three gossiping piumaserve replicas behind a
# piumagate running the intake ledger and anti-entropy reconciler.
# Clients submit runs and disconnect immediately (no wait=true, no
# polling), then replica b1 is kill -9'd and NEVER restarted. With no
# client left to drive idempotent resubmission, the gate alone must
# notice the permanent loss (gossip + probes), re-home b1's orphaned
# runs onto the survivors via the affinity ring, and drain its ledger:
# every ledger-accepted run reaches a terminal state exactly once, with
# zero per-replica duplicates.
#
# Usage: scripts/partition_smoke.sh
set -euo pipefail

A_ADDR="127.0.0.1:8104"
B_ADDR="127.0.0.1:8105"
C_ADDR="127.0.0.1:8106"
G_ADDR="127.0.0.1:8107"
GBASE="http://$G_ADDR"
TMP="$(mktemp -d)"
APID=""
BPID=""
CPID=""
GPID=""

cleanup() {
    for pid in "$APID" "$BPID" "$CPID" "$GPID"; do
        [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    done
    rm -rf "$TMP"
}
trap cleanup EXIT

fail() {
    echo "FAIL: $*" >&2
    for log in b0 b1 b2 gate; do
        echo "--- $log log ---" >&2
        cat "$TMP/$log.log" >&2 || true
    done
    exit 1
}

SERVE="$TMP/piumaserve"
GATE="$TMP/piumagate"
go build -o "$SERVE" ./cmd/piumaserve
go build -o "$GATE" ./cmd/piumagate

wait_healthy() {
    local base=$1 pid=$2 what=$3
    for _ in $(seq 1 100); do
        if curl -sf "$base/healthz" >/dev/null 2>&1; then
            return 0
        fi
        kill -0 "$pid" 2>/dev/null || fail "$what exited during startup"
        sleep 0.2
    done
    fail "$what never became healthy on $base"
}

# Three replicas in a full gossip mesh; the gate joins as a fourth
# member through its own -gossip-interval below.
"$SERVE" -addr "$A_ADDR" -workers 2 -queue-depth 64 -replica b0 \
    -gossip-addr "http://$A_ADDR" -gossip-interval 200ms -gossip-seed 10 \
    -gossip-peer "b1=http://$B_ADDR" -gossip-peer "b2=http://$C_ADDR" \
    >"$TMP/b0.log" 2>&1 &
APID=$!
"$SERVE" -addr "$B_ADDR" -workers 2 -queue-depth 64 -replica b1 \
    -gossip-addr "http://$B_ADDR" -gossip-interval 200ms -gossip-seed 11 \
    -gossip-peer "b0=http://$A_ADDR" -gossip-peer "b2=http://$C_ADDR" \
    >"$TMP/b1.log" 2>&1 &
BPID=$!
"$SERVE" -addr "$C_ADDR" -workers 2 -queue-depth 64 -replica b2 \
    -gossip-addr "http://$C_ADDR" -gossip-interval 200ms -gossip-seed 12 \
    -gossip-peer "b0=http://$A_ADDR" -gossip-peer "b1=http://$B_ADDR" \
    >"$TMP/b2.log" 2>&1 &
CPID=$!
wait_healthy "http://$A_ADDR" "$APID" "replica b0"
wait_healthy "http://$B_ADDR" "$BPID" "replica b1"
wait_healthy "http://$C_ADDR" "$CPID" "replica b2"

"$GATE" -addr "$G_ADDR" -backends "http://$A_ADDR,http://$B_ADDR,http://$C_ADDR" \
    -policy round-robin -probe-interval 250ms \
    -data-dir "$TMP/gate-data" \
    -gossip-interval 200ms -suspect-after 2 -dead-after 1s \
    -reconcile-interval 500ms >"$TMP/gate.log" 2>&1 &
GPID=$!
wait_healthy "$GBASE" "$GPID" "piumagate"

echo "== submit runs and disconnect (no waiting clients) =="
RUNIDS=()
for seed in 1 2 3 4 5 6 7 8 9; do
    RESP=$(curl -s -X POST "$GBASE/v1/runs" -H 'Content-Type: application/json' \
        -d "{\"experiment\":\"table1\",\"options\":{\"quick\":true,\"seed\":$seed}}")
    ID=$(echo "$RESP" | sed -n 's/.*"id":[[:space:]]*"\([^"]*\)".*/\1/p' | head -n1)
    [ -n "$ID" ] || fail "submission seed=$seed not accepted: $RESP"
    RUNIDS+=("$ID")
done
echo "accepted ${#RUNIDS[@]} runs"

# The ledger must have journaled every acceptance before the kill.
OPEN=$(curl -s "$GBASE/metrics" | sed -n 's/^piumagate_intake_open_runs \([0-9][0-9]*\).*/\1/p')
[ -n "$OPEN" ] || fail "gate metrics missing piumagate_intake_open_runs"
echo "ledger holds $OPEN open run(s)"

echo "== kill -9 replica b1 — it is never restarted =="
kill -9 "$BPID" 2>/dev/null || true
BPID=""

# No client is watching. The gate's gossip/probes must confirm the
# loss and the reconciler must re-home b1's runs until the ledger
# drains to zero open runs.
DRAINED=""
for _ in $(seq 1 120); do
    OPEN=$(curl -s "$GBASE/metrics" | sed -n 's/^piumagate_intake_open_runs \([0-9][0-9]*\).*/\1/p')
    if [ "${OPEN:-1}" = 0 ]; then
        DRAINED=1
        break
    fi
    sleep 0.5
done
[ -n "$DRAINED" ] || fail "intake ledger never drained (still $OPEN open run(s)) — orphans were not re-homed"
echo "ledger drained: every accepted run reached a terminal state"

# b1 must be marked down and stay down.
BACKENDS=$(curl -s "$GBASE/v1/gate/backends")
echo "$BACKENDS" | grep -A2 '"name": "b1"' | grep -q '"healthy": false' \
    || fail "b1 should be marked down: $BACKENDS"

# Exactly-once: each accepted run appears on exactly one surviving
# replica, and no survivor holds a non-terminal run.
LIST_A=$(curl -s "http://$A_ADDR/v1/runs")
LIST_C=$(curl -s "http://$C_ADDR/v1/runs")
for listing in "$LIST_A" "$LIST_C"; do
    if echo "$listing" | grep -q '"status": "queued"\|"status": "running"'; then
        fail "non-terminal run left on a survivor: $listing"
    fi
done
for id in "${RUNIDS[@]}"; do
    NA=$(echo "$LIST_A" | grep -c "\"id\": \"$id\"" || true)
    NC=$(echo "$LIST_C" | grep -c "\"id\": \"$id\"" || true)
    TOTAL=$((NA + NC))
    [ "$TOTAL" = 1 ] || fail "run $id held by $TOTAL survivor replica(s), want exactly 1 (b0=$NA b2=$NC)"
done
echo "all ${#RUNIDS[@]} runs live on exactly one survivor each — zero duplicates"

METRICS=$(curl -s "$GBASE/metrics")
REHOMED=$(echo "$METRICS" | sed -n 's/^piumagate_rehomed_runs_total{backend="[^"]*"} \([0-9][0-9]*\).*/\1/p' | awk '{s+=$1} END {print s+0}')
echo "$METRICS" | grep -q '^piumagate_reconcile_sweeps_total [1-9]' \
    || fail "gate metrics show no reconcile sweeps"
echo "$METRICS" | grep -q 'piumagate_gossip_member_state{backend="b1"}' \
    || fail "gate metrics missing gossiped member state for b1"

echo "PASS: replica lost forever, no client waiting — ${#RUNIDS[@]} runs terminal exactly once (${REHOMED:-0} re-homed)"
