#!/usr/bin/env bash
# Load-generation smoke test: boot piumaserve, drive the ~2s "smoke"
# scenario through piumaload recording a trace, require a clean report
# (every request completed, zero errors, zero backpressure), then
# replay the recorded trace against the same server and require the
# replay to come back clean too.
#
# Usage: scripts/load_smoke.sh [addr]
set -euo pipefail

ADDR="${1:-127.0.0.1:8093}"
BASE="http://$ADDR"
TMP="$(mktemp -d)"
LOG="$TMP/serve.log"
TRACE="$TMP/run.trace"
REPORT="$TMP/report.json"
PID=""

cleanup() {
    [ -n "$PID" ] && kill "$PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT

fail() {
    echo "FAIL: $*" >&2
    echo "--- server log ---" >&2
    cat "$LOG" >&2 || true
    exit 1
}

# json_int <field> extracts an integer field from the JSON on stdin
# (top-level scalars only; nested objects repeat fields, so take the
# first match, which is the report-level one).
json_int() {
    sed -n "s/.*\"$1\"[[:space:]]*:[[:space:]]*\([0-9][0-9]*\).*/\1/p" | head -n1
}

SERVE="$TMP/piumaserve"
LOAD="$TMP/piumaload"
go build -o "$SERVE" ./cmd/piumaserve
go build -o "$LOAD" ./cmd/piumaload

"$SERVE" -addr "$ADDR" -workers 2 >"$LOG" 2>&1 &
PID=$!
for _ in $(seq 1 100); do
    if curl -sf "$BASE/healthz" >/dev/null 2>&1; then
        break
    fi
    kill -0 "$PID" 2>/dev/null || fail "server exited during startup"
    sleep 0.2
done
curl -sf "$BASE/healthz" >/dev/null || fail "server never became healthy on $ADDR"

echo "== run the smoke scenario, recording a trace =="
"$LOAD" -target "$BASE" -scenario smoke -record "$TRACE" -json \
    -fail-on-backpressure >"$REPORT" || fail "piumaload run exited non-zero"

REQUESTS=$(json_int requests <"$REPORT")
COMPLETED=$(json_int completed <"$REPORT")
ERRORS=$(json_int errors <"$REPORT")
[ -n "$REQUESTS" ] && [ "$REQUESTS" -ge 1 ] || fail "report issued no requests: $(cat "$REPORT")"
[ "$COMPLETED" = "$REQUESTS" ] || fail "only $COMPLETED of $REQUESTS requests completed: $(cat "$REPORT")"
[ "${ERRORS:-1}" = 0 ] || fail "report shows $ERRORS error(s): $(cat "$REPORT")"
echo "recorded run clean: $COMPLETED/$REQUESTS completed, 0 errors"

echo "== replay the recorded trace =="
"$LOAD" -target "$BASE" -replay "$TRACE" -json \
    -fail-on-backpressure >"$REPORT" || fail "piumaload replay exited non-zero"
RCOMPLETED=$(json_int completed <"$REPORT")
RERRORS=$(json_int errors <"$REPORT")
[ "$RCOMPLETED" = "$REQUESTS" ] || fail "replay completed $RCOMPLETED of $REQUESTS: $(cat "$REPORT")"
[ "${RERRORS:-1}" = 0 ] || fail "replay shows $RERRORS error(s): $(cat "$REPORT")"
grep -q '"replayed": true' "$REPORT" || fail "replay report not marked replayed"

echo "PASS: smoke scenario ran and replayed clean ($REQUESTS requests)"
